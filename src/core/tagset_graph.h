#ifndef CORRTRACK_CORE_TAGSET_GRAPH_H_
#define CORRTRACK_CORE_TAGSET_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/cooccurrence.h"

namespace corrtrack {

/// The §4 partitioning graph: one vertex per distinct tagset, an edge
/// between tagsets sharing tags, weighted by the number of shared tags.
/// Shared substrate of the classic-graph-partitioning baselines (§2):
/// Kernighan–Lin [12], spectral bisection [6], and their combination [11].
struct TagsetGraph {
  /// adjacency[v] = sorted (neighbour, weight) pairs, deduplicated.
  std::vector<std::vector<std::pair<uint32_t, int>>> adjacency;

  size_t num_vertices() const { return adjacency.size(); }
};

TagsetGraph BuildTagsetGraph(const CooccurrenceSnapshot& snapshot);

/// Kernighan–Lin-style single-vertex refinement (the move pass shared by
/// the KL baseline and the spectral+KL combination of [11]): repeatedly
/// moves the vertex with the best cut-gain to another partition while the
/// per-partition document count stays below `cap`. Mutates `assignment`
/// (tagset index -> partition) and `counts` (per-partition document
/// counts). Runs at most `max_passes` sweeps; stops early when no move
/// helps.
void KlRefine(const CooccurrenceSnapshot& snapshot, const TagsetGraph& graph,
              int k, int max_passes, uint64_t cap,
              std::vector<int>* assignment, std::vector<uint64_t>* counts);

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_TAGSET_GRAPH_H_
