#ifndef CORRTRACK_CORE_JACCARD_H_
#define CORRTRACK_CORE_JACCARD_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/flat_counter_table.h"
#include "core/tagset.h"

namespace corrtrack {

/// One reported coefficient (the Calculator -> Tracker tuple of §6.2:
/// (s_i, J(s_i), CN(s_i))).
struct JaccardEstimate {
  TagSet tags;
  double coefficient = 0.0;
  /// CN(s_i): documents containing *all* tags of the set — the counter the
  /// Tracker uses to pick among duplicate reports.
  uint64_t intersection_count = 0;
  /// Documents containing *any* tag of the set (inclusion–exclusion, Eq. 2).
  uint64_t union_count = 0;
};

/// How duplicate estimates of one tagset within one reporting period merge.
/// The Tracker and the serving index share the rule, so served state stays
/// bit-identical to the Tracker's period map under either policy.
enum class EstimateMerge {
  /// §6.2: keep the estimate with the larger counter CN. Correct under tag
  /// replication (SCC/SCL/SCI, or DS degraded by Single Additions), where
  /// several Calculators observe *overlapping* document sets for the same
  /// tagset — summing would double-count.
  kMaxCN,
  /// Sum intersection/union counts and recompute the coefficient. Exact
  /// for disjoint partitionings (DS without replication): each document is
  /// then observed by at most one Calculator per tagset, so the partial
  /// reports that an elastic resize splits across owners (old owner's
  /// residual counters, the install protocol's quiesce flush, the new
  /// owner's tail) are over *disjoint* document sets and add up to the
  /// centralised oracle's counts bit for bit.
  kAdditive,
};

/// Applies `policy` to merge `incoming` into `*entry` (same tagset, same
/// reporting period).
inline void MergeEstimate(JaccardEstimate* entry,
                          const JaccardEstimate& incoming,
                          EstimateMerge policy) {
  if (policy == EstimateMerge::kMaxCN) {
    if (incoming.intersection_count > entry->intersection_count) {
      *entry = incoming;
    }
    return;
  }
  entry->intersection_count += incoming.intersection_count;
  entry->union_count += incoming.union_count;
  // Same expression as SubsetCounterTable::Compute, so a sum of disjoint
  // partials reproduces the oracle's coefficient exactly.
  entry->coefficient = entry->union_count > 0
                           ? static_cast<double>(entry->intersection_count) /
                                 static_cast<double>(entry->union_count)
                           : 0.0;
}

/// The Calculator's counting state (§3.1): one exact counter per observed
/// co-occurring tagset.
///
/// Observe(s) increments the counter of every non-empty subset of s, so
/// counter(A) = number of observed notifications containing all tags of A.
/// When the partition covering this calculator holds all tags of A, that
/// equals |∩_{t∈A} T_t| exactly, and Eq. 2 recovers |∪ T_t| from the
/// counters, giving the exact Jaccard coefficient of Eq. 1 — no sketches
/// (§2 argues Bloom/Count-Min false positives are counter-productive here).
///
/// Counters live in a FlatCounterTable keyed by PackedTagKey: Observe is a
/// packed-key subset enumeration feeding a probe+increment loop — no TagSet
/// construction, no node allocation per subset.
class SubsetCounterTable {
 public:
  SubsetCounterTable() = default;

  /// Counts one document/notification. All non-empty subsets of `tags` get
  /// +1. Requires tags.size() <= kMaxTagsPerDocument.
  void Observe(const TagSet& tags);

  /// Adds `count` to exactly the counter of `tags` — no subset
  /// enumeration. The state-migration primitive of the elastic install
  /// protocol: counter tables are linear (entry-wise sums), so injecting
  /// another table's exported counters reproduces the table that would
  /// have counted both observation sets directly.
  void Add(const TagSet& tags, uint64_t count);

  /// Exports every live counter as (tags, count), sorted by tagset — the
  /// handoff fragments a quiesced Calculator ships to the new owners.
  std::vector<std::pair<TagSet, uint64_t>> ExportCounters() const;

  /// Counter value for `tags` (0 when never observed together).
  uint64_t Count(const TagSet& tags) const;

  /// The Jaccard coefficient of `tags` from the current counters, or
  /// std::nullopt when the tags never co-occurred (counter 0).
  std::optional<JaccardEstimate> Compute(const TagSet& tags) const;

  /// Computes coefficients for every tracked tagset with at least two tags
  /// and intersection count > `min_support` ("the maximum possible number
  /// of Jaccard coefficients", §6.2). Deterministic order (sorted by
  /// tagset).
  std::vector<JaccardEstimate> ReportAll(uint64_t min_support = 0) const;

  /// Number of live counters (co-occurring tagsets incl. singletons).
  size_t num_counters() const { return counters_.size(); }

  /// Deletes all counters (after each reporting period, §6.2). Keeps the
  /// table's capacity: in steady state a Calculator re-fills roughly the
  /// same number of counters every period without reallocating.
  void Reset() { counters_.Reset(); }

 private:
  FlatCounterTable counters_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_JACCARD_H_
