#ifndef CORRTRACK_CORE_JACCARD_H_
#define CORRTRACK_CORE_JACCARD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flat_counter_table.h"
#include "core/tagset.h"

namespace corrtrack {

/// One reported coefficient (the Calculator -> Tracker tuple of §6.2:
/// (s_i, J(s_i), CN(s_i))).
struct JaccardEstimate {
  TagSet tags;
  double coefficient = 0.0;
  /// CN(s_i): documents containing *all* tags of the set — the counter the
  /// Tracker uses to pick among duplicate reports.
  uint64_t intersection_count = 0;
  /// Documents containing *any* tag of the set (inclusion–exclusion, Eq. 2).
  uint64_t union_count = 0;
};

/// The Calculator's counting state (§3.1): one exact counter per observed
/// co-occurring tagset.
///
/// Observe(s) increments the counter of every non-empty subset of s, so
/// counter(A) = number of observed notifications containing all tags of A.
/// When the partition covering this calculator holds all tags of A, that
/// equals |∩_{t∈A} T_t| exactly, and Eq. 2 recovers |∪ T_t| from the
/// counters, giving the exact Jaccard coefficient of Eq. 1 — no sketches
/// (§2 argues Bloom/Count-Min false positives are counter-productive here).
///
/// Counters live in a FlatCounterTable keyed by PackedTagKey: Observe is a
/// packed-key subset enumeration feeding a probe+increment loop — no TagSet
/// construction, no node allocation per subset.
class SubsetCounterTable {
 public:
  SubsetCounterTable() = default;

  /// Counts one document/notification. All non-empty subsets of `tags` get
  /// +1. Requires tags.size() <= kMaxTagsPerDocument.
  void Observe(const TagSet& tags);

  /// Counter value for `tags` (0 when never observed together).
  uint64_t Count(const TagSet& tags) const;

  /// The Jaccard coefficient of `tags` from the current counters, or
  /// std::nullopt when the tags never co-occurred (counter 0).
  std::optional<JaccardEstimate> Compute(const TagSet& tags) const;

  /// Computes coefficients for every tracked tagset with at least two tags
  /// and intersection count > `min_support` ("the maximum possible number
  /// of Jaccard coefficients", §6.2). Deterministic order (sorted by
  /// tagset).
  std::vector<JaccardEstimate> ReportAll(uint64_t min_support = 0) const;

  /// Number of live counters (co-occurring tagsets incl. singletons).
  size_t num_counters() const { return counters_.size(); }

  /// Deletes all counters (after each reporting period, §6.2). Keeps the
  /// table's capacity: in steady state a Calculator re-fills roughly the
  /// same number of counters every period without reallocating.
  void Reset() { counters_.Reset(); }

 private:
  FlatCounterTable counters_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_JACCARD_H_
