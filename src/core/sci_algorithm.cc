#include "core/sci_algorithm.h"

#include <algorithm>
#include <random>
#include <vector>

#include "core/set_cover_phase1.h"

namespace corrtrack {

PartitionSet SciAlgorithm::CreatePartitions(
    const CooccurrenceSnapshot& snapshot, int k, uint64_t seed) const {
  Phase1Result phase1 = RunSetCoverPhase1(snapshot, k, Phase1Cost::kZero);
  PartitionSet& ps = phase1.partitions;
  const std::vector<TagsetStats>& tagsets = snapshot.tagsets();

  // Line 2: s_i = S.random() — a seeded shuffle of the unassigned tagsets.
  std::vector<uint32_t> order;
  order.reserve(tagsets.size());
  for (uint32_t j = 0; j < tagsets.size(); ++j) {
    if (!phase1.assigned[j]) order.push_back(j);
  }
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  for (uint32_t j : order) {
    const TagsetStats& stats = tagsets[j];
    // Line 3: the partition sharing the most tags (∩; see header note).
    // SCI tracks no loads; ties go to the lowest partition id.
    int target = 0;
    size_t best_overlap = ps.OverlapSize(0, stats.tags);
    for (int p = 1; p < ps.num_partitions(); ++p) {
      const size_t overlap = ps.OverlapSize(p, stats.tags);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        target = p;
      }
    }
    ps.AddTags(target, stats.tags);
    ps.AddLoad(target, stats.load);  // Bookkeeping only; not used to select.
  }
  return ps;
}

}  // namespace corrtrack
