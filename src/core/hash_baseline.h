#ifndef CORRTRACK_CORE_HASH_BASELINE_H_
#define CORRTRACK_CORE_HASH_BASELINE_H_

#include "core/cooccurrence.h"
#include "core/partition.h"

namespace corrtrack {

/// The naive strawman the problem statement (§1.1) rules out: hash every
/// tag independently to one of k partitions. Perfectly balanced and
/// replication-free — but it ignores co-occurrence, so most multi-tag
/// tagsets end up covered by *no* partition and their Jaccard coefficients
/// simply cannot be computed (requirement 1 of §1.1 fails). §5.2's
/// expected-communication model describes exactly such random partitions.
///
/// Not a PartitioningAlgorithm: it intentionally violates the coverage
/// invariant that interface guarantees. Used by bench/baseline_comparison
/// to quantify what the paper's algorithms buy.
PartitionSet HashPartitionBaseline(const CooccurrenceSnapshot& snapshot,
                                   int k, uint64_t seed);

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_HASH_BASELINE_H_
