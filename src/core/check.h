#ifndef CORRTRACK_CORE_CHECK_H_
#define CORRTRACK_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. corrtrack is built without exceptions (per the
/// project style); internal invariant violations abort with a diagnostic.
/// These are for programmer errors, not for recoverable conditions — fallible
/// public APIs return std::optional or bool instead.

namespace corrtrack::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CORRTRACK_CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace corrtrack::internal

/// Aborts the process when `cond` is false. Always on (also in release
/// builds): the checked conditions are cheap and guard data-structure
/// invariants whose violation would silently corrupt experiment results.
#define CORRTRACK_CHECK(cond)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::corrtrack::internal::CheckFail(__FILE__, __LINE__, #cond);    \
    }                                                                 \
  } while (0)

/// Convenience comparisons (avoid double evaluation by binding to locals).
#define CORRTRACK_CHECK_OP(op, a, b)                                  \
  do {                                                                \
    const auto& corrtrack_check_a = (a);                              \
    const auto& corrtrack_check_b = (b);                              \
    if (!(corrtrack_check_a op corrtrack_check_b)) {                  \
      ::corrtrack::internal::CheckFail(__FILE__, __LINE__,            \
                                       #a " " #op " " #b);            \
    }                                                                 \
  } while (0)

#define CORRTRACK_CHECK_EQ(a, b) CORRTRACK_CHECK_OP(==, a, b)
#define CORRTRACK_CHECK_NE(a, b) CORRTRACK_CHECK_OP(!=, a, b)
#define CORRTRACK_CHECK_LT(a, b) CORRTRACK_CHECK_OP(<, a, b)
#define CORRTRACK_CHECK_LE(a, b) CORRTRACK_CHECK_OP(<=, a, b)
#define CORRTRACK_CHECK_GT(a, b) CORRTRACK_CHECK_OP(>, a, b)
#define CORRTRACK_CHECK_GE(a, b) CORRTRACK_CHECK_OP(>=, a, b)

#endif  // CORRTRACK_CORE_CHECK_H_
