#include "core/union_find.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/check.h"

namespace corrtrack {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

size_t UnionFind::Find(size_t x) {
  CORRTRACK_CHECK_LT(x, parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // Path halving.
    x = parent_[x];
  }
  return x;
}

size_t UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return ra;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return ra;
}

std::vector<std::vector<size_t>> UnionFind::Components() {
  std::unordered_map<size_t, size_t> root_to_index;
  root_to_index.reserve(num_sets_);
  std::vector<std::vector<size_t>> out;
  out.reserve(num_sets_);
  for (size_t x = 0; x < parent_.size(); ++x) {
    const size_t root = Find(x);
    auto [it, inserted] = root_to_index.emplace(root, out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(x);
  }
  return out;
}

}  // namespace corrtrack
