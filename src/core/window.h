#ifndef CORRTRACK_CORE_WINDOW_H_
#define CORRTRACK_CORE_WINDOW_H_

#include <deque>
#include <limits>

#include "core/document.h"
#include "core/types.h"

namespace corrtrack {

/// Sliding window over the document stream (§3.2, cf. Krämer & Seeger [14]).
///
/// Conceptually time-based (e.g. the last 5 minutes of tweets) or count-based
/// (e.g. the last 10 000 tweets); both bounds can be active at once, in which
/// case the stricter one wins. Documents must be added in non-decreasing
/// timestamp order; equal timestamps are allowed and evicted together.
///
/// Boundary contract (pinned by window_test.cc): the time bound keeps
/// exactly the documents with time > now - span — a document whose age
/// reaches the span is evicted, *including* one sitting exactly at the
/// boundary — and Add(doc) and AdvanceTo(doc.time) agree on that boundary,
/// so advancing the clock to a timestamp evicts the same documents as
/// adding a document there would.
class SlidingWindow {
 public:
  /// `span` <= 0 disables the time bound; `max_count` == 0 disables the count
  /// bound. At least one bound must be active.
  SlidingWindow(Timestamp span, size_t max_count);

  static SlidingWindow TimeBased(Timestamp span) {
    return SlidingWindow(span, 0);
  }
  static SlidingWindow CountBased(size_t max_count) {
    return SlidingWindow(0, max_count);
  }

  /// Appends `doc` and evicts documents that fall out of the window. The
  /// time bound keeps documents with time > doc.time - span.
  void Add(const Document& doc);

  /// Evicts by time only, for callers advancing a clock without new
  /// documents.
  void AdvanceTo(Timestamp now);

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Oldest-first iteration.
  std::deque<Document>::const_iterator begin() const { return docs_.begin(); }
  std::deque<Document>::const_iterator end() const { return docs_.end(); }

  Timestamp span() const { return span_; }
  size_t max_count() const { return max_count_; }

 private:
  void EvictForTime(Timestamp now);

  Timestamp span_;
  size_t max_count_;
  Timestamp last_time_ = std::numeric_limits<Timestamp>::min();
  std::deque<Document> docs_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_WINDOW_H_
