#ifndef CORRTRACK_CORE_TAGSET_H_
#define CORRTRACK_CORE_TAGSET_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/inlined_vector.h"
#include "core/types.h"

namespace corrtrack {

/// A canonical set of tags: sorted, duplicate-free, inline-stored for up to
/// 8 tags (the paper observes < 10 tags per tweet, §3.1).
///
/// TagSet is the unit of everything in the system: a document's annotation,
/// a co-occurring tagset s_i for which a Jaccard coefficient is computed, and
/// a Disseminator notification (the subset of a document's tags assigned to
/// one Calculator).
class TagSet {
 public:
  using Storage = InlinedVector<TagId, 8>;
  using const_iterator = Storage::const_iterator;

  TagSet() = default;

  /// Builds a canonical set from arbitrary input (sorts, deduplicates).
  explicit TagSet(std::initializer_list<TagId> tags)
      : TagSet(std::vector<TagId>(tags)) {}
  explicit TagSet(const std::vector<TagId>& tags);

  /// Builds from a range that is already sorted and duplicate-free.
  /// Checked in debug: callers must uphold the precondition.
  static TagSet FromSorted(const TagId* first, const TagId* last);

  size_t size() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }

  const_iterator begin() const { return tags_.begin(); }
  const_iterator end() const { return tags_.end(); }

  TagId operator[](size_t i) const { return tags_[i]; }

  /// Binary-searches for `tag`.
  bool Contains(TagId tag) const;

  /// True when every tag of *this is contained in `other`.
  bool IsSubsetOf(const TagSet& other) const;

  /// Number of tags present in both sets (linear merge).
  size_t IntersectionSize(const TagSet& other) const;

  /// Set intersection / union (canonical results).
  TagSet Intersect(const TagSet& other) const;
  TagSet Union(const TagSet& other) const;

  /// Invokes `fn(const TagSet&)` for every non-empty subset of *this with at
  /// least `min_size` tags. Requires size() <= kMaxTagsPerDocument (bitmask
  /// enumeration). The subsets passed to `fn` are canonical.
  template <typename Fn>
  void ForEachSubset(Fn&& fn, size_t min_size = 1) const {
    const size_t n = tags_.size();
    CORRTRACK_CHECK_LE(n, static_cast<size_t>(kMaxTagsPerDocument));
    if (n == 0) return;
    const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (static_cast<size_t>(__builtin_popcount(mask)) < min_size) continue;
      TagSet subset;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) subset.tags_.push_back(tags_[i]);
      }
      fn(static_cast<const TagSet&>(subset));
    }
  }

  /// FNV-1a over the tag ids; canonical form makes this a set hash.
  size_t Hash() const;

  /// "{1,5,9}" — for diagnostics and test failure messages.
  std::string ToString() const;

  friend bool operator==(const TagSet& a, const TagSet& b) {
    return a.tags_ == b.tags_;
  }
  friend bool operator!=(const TagSet& a, const TagSet& b) {
    return !(a == b);
  }
  friend bool operator<(const TagSet& a, const TagSet& b) {
    return a.tags_ < b.tags_;
  }

 private:
  Storage tags_;
};

struct TagSetHash {
  size_t operator()(const TagSet& s) const { return s.Hash(); }
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_TAGSET_H_
