#ifndef CORRTRACK_CORE_TAGSET_H_
#define CORRTRACK_CORE_TAGSET_H_

#include <bit>
#include <cstddef>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/inlined_vector.h"
#include "core/types.h"

namespace corrtrack {

/// Single-pass multiply-xor mix over a tag array — the one hash used by
/// every flat table keyed on tags. Never returns 0: the open-addressing
/// tables (FlatCounterTable, FlatTagSetMap) use 0 as the empty-slot
/// marker, so that property is load-bearing.
inline uint64_t HashTagSpan(const TagId* tags, size_t n) {
  uint64_t h = 0x9E3779B97F4A7C15ull + n;
  for (size_t i = 0; i < n; ++i) {
    h ^= tags[i];
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 29;
  }
  return h == 0 ? 1 : h;
}

/// Fixed-size, trivially copyable key for tagsets of up to
/// kMaxTagsPerDocument tags: the tags in ascending order with unused slots
/// padded to kInvalidTag, so equality is one flat memory compare (64 bytes
/// of tags + the size word) and the hash a single-pass mix. This is the key
/// of the subset-counting hot path (FlatCounterTable): enumerating a
/// document's subsets yields packed keys directly, with no per-subset
/// TagSet construction or heap traffic.
struct PackedTagKey {
  static constexpr size_t kCapacity = static_cast<size_t>(kMaxTagsPerDocument);

  TagId tags[kCapacity];
  uint32_t size = 0;

  PackedTagKey() {
    for (TagId& t : tags) t = kInvalidTag;
  }

  uint64_t Hash() const { return HashTagSpan(tags, size); }

  friend bool operator==(const PackedTagKey& a, const PackedTagKey& b) {
    // Padding is canonical (kInvalidTag), so comparing the full tag array
    // subsumes the size compare; the latter is kept as a cheap early out.
    return a.size == b.size &&
           std::memcmp(a.tags, b.tags, sizeof(a.tags)) == 0;
  }
  friend bool operator!=(const PackedTagKey& a, const PackedTagKey& b) {
    return !(a == b);
  }
};

/// A canonical set of tags: sorted, duplicate-free, inline-stored for up to
/// 8 tags (the paper observes < 10 tags per tweet, §3.1).
///
/// TagSet is the unit of everything in the system: a document's annotation,
/// a co-occurring tagset s_i for which a Jaccard coefficient is computed, and
/// a Disseminator notification (the subset of a document's tags assigned to
/// one Calculator).
class TagSet {
 public:
  using Storage = InlinedVector<TagId, 8>;
  using const_iterator = Storage::const_iterator;

  TagSet() = default;

  /// Builds a canonical set from arbitrary input (sorts, deduplicates).
  explicit TagSet(std::initializer_list<TagId> tags)
      : TagSet(std::vector<TagId>(tags)) {}
  explicit TagSet(const std::vector<TagId>& tags);

  /// Builds from a range that is already sorted and duplicate-free.
  /// Checked in debug: callers must uphold the precondition.
  static TagSet FromSorted(const TagId* first, const TagId* last);

  size_t size() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }

  const_iterator begin() const { return tags_.begin(); }
  const_iterator end() const { return tags_.end(); }

  TagId operator[](size_t i) const { return tags_[i]; }

  /// Binary-searches for `tag`.
  bool Contains(TagId tag) const;

  /// True when every tag of *this is contained in `other`.
  bool IsSubsetOf(const TagSet& other) const;

  /// Number of tags present in both sets (linear merge).
  size_t IntersectionSize(const TagSet& other) const;

  /// Set intersection / union (canonical results).
  TagSet Intersect(const TagSet& other) const;
  TagSet Union(const TagSet& other) const;

  /// The core subset enumerator, allocation-free: writes each non-empty
  /// subset with at least `min_size` tags into the caller-provided
  /// `scratch` buffer (capacity >= size()) and invokes
  /// `fn(const TagId* subset, size_t subset_size)`. Subsets are ascending.
  /// Requires size() <= kMaxTagsPerDocument (bitmask enumeration).
  /// ForEachSubset and ForEachSubsetKey are thin adapters over this loop.
  template <typename Fn>
  void ForEachSubsetSpan(TagId* scratch, Fn&& fn, size_t min_size = 1) const {
    const size_t n = tags_.size();
    CORRTRACK_CHECK_LE(n, static_cast<size_t>(kMaxTagsPerDocument));
    if (n == 0) return;
    const uint32_t full = SubsetMaskFull(n);
    // `mask == full` is tested before the increment, so the loop terminates
    // even when `full` is the all-ones mask (the n == 32 overflow hazard of
    // a `mask <= full` condition).
    for (uint32_t mask = 1;; ++mask) {
      const size_t m = static_cast<size_t>(std::popcount(mask));
      if (m >= min_size) {
        size_t out = 0;
        for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
          scratch[out++] = tags_[std::countr_zero(bits)];
        }
        fn(static_cast<const TagId*>(scratch), m);
      }
      if (mask == full) break;
    }
  }

  /// Invokes `fn(const TagSet&)` for every non-empty subset of *this with at
  /// least `min_size` tags. The subsets passed to `fn` are canonical views
  /// of one reused scratch set — copy to retain beyond the callback.
  template <typename Fn>
  void ForEachSubset(Fn&& fn, size_t min_size = 1) const {
    TagId buf[kMaxTagsPerDocument];
    TagSet scratch;
    scratch.tags_.reserve(tags_.size());
    ForEachSubsetSpan(
        buf,
        [&](const TagId* subset, size_t m) {
          scratch.tags_.clear();
          scratch.tags_.append(subset, subset + m);
          fn(static_cast<const TagSet&>(scratch));
        },
        min_size);
  }

  /// Packed-key sibling of ForEachSubset: invokes `fn(const PackedTagKey&)`
  /// for every non-empty subset with at least `min_size` tags. The key is a
  /// reused scratch (padding kept canonical between iterations); copy it to
  /// retain. This is the hot-path enumerator: the span loop writes straight
  /// into a probe-ready packed key, no TagSet construction.
  template <typename Fn>
  void ForEachSubsetKey(Fn&& fn, size_t min_size = 1) const {
    static_assert(PackedTagKey::kCapacity >=
                  static_cast<size_t>(kMaxTagsPerDocument));
    PackedTagKey key;
    ForEachSubsetSpan(
        key.tags,
        [&](const TagId*, size_t m) {
          for (uint32_t i = static_cast<uint32_t>(m); i < key.size; ++i) {
            key.tags[i] = kInvalidTag;
          }
          key.size = static_cast<uint32_t>(m);
          fn(static_cast<const PackedTagKey&>(key));
        },
        min_size);
  }

  /// Packs this set into a PackedTagKey. Requires
  /// size() <= PackedTagKey::kCapacity.
  PackedTagKey PackKey() const {
    CORRTRACK_CHECK_LE(tags_.size(), PackedTagKey::kCapacity);
    PackedTagKey key;
    for (size_t i = 0; i < tags_.size(); ++i) key.tags[i] = tags_[i];
    key.size = static_cast<uint32_t>(tags_.size());
    return key;
  }

  /// Rebuilds the canonical TagSet a PackedTagKey was packed from.
  static TagSet FromPackedKey(const PackedTagKey& key) {
    return FromSorted(key.tags, key.tags + key.size);
  }

  /// FNV-1a over the tag ids; canonical form makes this a set hash.
  size_t Hash() const;

  /// "{1,5,9}" — for diagnostics and test failure messages.
  std::string ToString() const;

  friend bool operator==(const TagSet& a, const TagSet& b) {
    return a.tags_ == b.tags_;
  }
  friend bool operator!=(const TagSet& a, const TagSet& b) {
    return !(a == b);
  }
  friend bool operator<(const TagSet& a, const TagSet& b) {
    return a.tags_ < b.tags_;
  }

 private:
  /// All-ones mask over n subset positions, safe for n up to 32.
  static uint32_t SubsetMaskFull(size_t n) {
    return n >= 32 ? ~0u : ((1u << n) - 1);
  }

  Storage tags_;
};

struct TagSetHash {
  size_t operator()(const TagSet& s) const { return s.Hash(); }
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_TAGSET_H_
