#ifndef CORRTRACK_CORE_PARTITIONING_H_
#define CORRTRACK_CORE_PARTITIONING_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cooccurrence.h"
#include "core/partition.h"
#include "core/tagset.h"

namespace corrtrack {

/// The four partitioning algorithms evaluated in the paper (§4, §8).
enum class AlgorithmKind {
  kDS,   // Disjoint Sets, Algorithm 1.
  kSCC,  // Set cover optimising communication, Algorithms 2+3.
  kSCL,  // Set cover optimising processing load, Algorithms 2+4.
  kSCI,  // Set cover of the earlier workshop paper [1], Algorithms 2+5.
};

std::string_view AlgorithmName(AlgorithmKind kind);

/// A partition fragment proposed by one Partitioner instance: the tags plus
/// the load they carried in the proposing Partitioner's window. The Merger
/// treats fragments as weighted tagsets and re-runs the same algorithm over
/// them (§6.2).
struct PartitionFragment {
  TagSet tags;
  uint64_t load = 0;
};

/// Strategy interface shared by DS / SCC / SCL / SCI.
///
/// All methods are const and deterministic given the same inputs (SCI's
/// random phase-2 order is driven by the explicit `seed`).
class PartitioningAlgorithm {
 public:
  virtual ~PartitioningAlgorithm() = default;

  virtual AlgorithmKind kind() const = 0;
  std::string_view name() const { return AlgorithmName(kind()); }

  /// Creates k partitions such that every tagset of `snapshot` is contained
  /// in at least one partition (the coverage requirement of §1.1).
  virtual PartitionSet CreatePartitions(const CooccurrenceSnapshot& snapshot,
                                        int k, uint64_t seed) const = 0;

  /// What one Partitioner instance sends to the Merger (§6.2): for DS the
  /// disjoint sets of its window share (phase 1 only, so the Merger can
  /// re-combine them); for the set-cover algorithms its k local partitions.
  virtual std::vector<PartitionFragment> ProposeFragments(
      const CooccurrenceSnapshot& snapshot, int k, uint64_t seed) const;

  /// Picks the partition that should absorb `tags` as a Single Addition
  /// (§7.1). DS/SCC/SCI minimise the communication increase (maximal overlap
  /// with the tagset, then least load); SCL keeps load balanced (least load,
  /// then maximal overlap). `load_hint` is the tagset's current load
  /// estimate used for SCL's balancing.
  virtual int ChooseSingleAdditionTarget(const PartitionSet& ps,
                                         const TagSet& tags) const;
};

/// §7.3 elastic repartitioning: the cost model and target-k policy through
/// which the Merger *chooses* each round's partition count instead of
/// recutting into the build-time k. The model prices a candidate k as
///
///   Cost(k) = L / k  +  overhead · k
///
/// — the ideal-balance per-partition processing share of the window load L
/// plus a fixed per-partition cost (one live Calculator's mailbox,
/// broadcast and reporting overhead, expressed in the same load units) —
/// which is minimised at k* = sqrt(L / overhead). Splitting past k* buys
/// less balance than it costs in per-task overhead; merging below it
/// overloads the heaviest partition. A hysteresis band keeps k sticky
/// under load jitter so the topology doesn't thrash through resizes
/// (adaptive-scale correlation trackers, AMIC; sketch-based resizing,
/// Cormode & Dark).
struct ElasticPolicy {
  /// Master switch: off = the static build-time k (paper behaviour).
  bool enabled = false;

  /// Fixed cost of one live partition/Calculator in window-load units
  /// (documents per window).
  uint64_t partition_overhead_load = 500;

  int min_partitions = 1;
  /// Policy cap; 0 = none (the runtime's provisioned maximum still
  /// applies).
  int max_partitions = 0;

  /// Keep the current k while the optimum is within this fraction of it.
  double resize_hysteresis = 0.25;
};

/// The cost model above, exposed for tests and tuning. Requires k > 0.
double ElasticPartitionCost(uint64_t window_load, int k,
                            const ElasticPolicy& policy);

/// Picks the target partition count for an observed window load: the
/// integer minimiser of ElasticPartitionCost, clamped to the policy
/// bounds — except that `current_k` wins while the optimum lies inside
/// the hysteresis band. `current_k` <= 0 disables hysteresis (initial
/// creation).
int ChooseTargetK(uint64_t window_load, int current_k,
                  const ElasticPolicy& policy);

/// Factory for the paper's algorithms.
std::unique_ptr<PartitioningAlgorithm> MakeAlgorithm(AlgorithmKind kind);

/// All four, in the order the paper's figures list them (DS, SCI, SCC, SCL).
std::vector<AlgorithmKind> AllAlgorithms();

namespace internal {

/// Shared tie-breaking helpers: pick partition maximising overlap with
/// `tags`, ties by least load ("communication-first"), or minimising load,
/// ties by overlap ("load-first").
int PickPartitionByOverlapThenLoad(const PartitionSet& ps, const TagSet& tags);
int PickPartitionByLoadThenOverlap(const PartitionSet& ps, const TagSet& tags);

}  // namespace internal

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_PARTITIONING_H_
