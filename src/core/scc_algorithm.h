#ifndef CORRTRACK_CORE_SCC_ALGORITHM_H_
#define CORRTRACK_CORE_SCC_ALGORITHM_H_

#include "core/partitioning.h"

namespace corrtrack {

/// Set-cover-based algorithm optimising communication (Algorithms 2 + 3).
///
/// Phase 1 (Algorithm 2, communication cost): k initial partitions seeded
/// with the cheapest / most-covering tagsets. Phase 2 (Algorithm 3):
/// repeatedly pick the tagset with the most uncovered tags (ties: fewest
/// total tags) and append it to the partition sharing the most tags with it
/// (ties: least load).
///
/// Phase-2 selection uses a lazy max-heap: the key |s \ CV| only decreases
/// as CV grows, so a popped entry whose recomputed key is unchanged is a
/// true maximum. This makes repartitions O(n log n) instead of the naive
/// O(n²) rescan (see bench/micro_partitioning for the ablation).
class SccAlgorithm : public PartitioningAlgorithm {
 public:
  /// `use_lazy_heap` exists for the ablation benchmark; both paths compute
  /// identical partitions.
  explicit SccAlgorithm(bool use_lazy_heap = true)
      : use_lazy_heap_(use_lazy_heap) {}

  AlgorithmKind kind() const override { return AlgorithmKind::kSCC; }

  PartitionSet CreatePartitions(const CooccurrenceSnapshot& snapshot, int k,
                                uint64_t seed) const override;

 private:
  bool use_lazy_heap_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_SCC_ALGORITHM_H_
