#include "core/tagset.h"

#include <algorithm>

namespace corrtrack {

TagSet::TagSet(const std::vector<TagId>& tags) {
  std::vector<TagId> sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (TagId t : sorted) tags_.push_back(t);
}

TagSet TagSet::FromSorted(const TagId* first, const TagId* last) {
  TagSet s;
  for (const TagId* p = first; p != last; ++p) {
    if (p != first) CORRTRACK_CHECK_LT(*(p - 1), *p);
    s.tags_.push_back(*p);
  }
  return s;
}

bool TagSet::Contains(TagId tag) const {
  return std::binary_search(tags_.begin(), tags_.end(), tag);
}

bool TagSet::IsSubsetOf(const TagSet& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

size_t TagSet::IntersectionSize(const TagSet& other) const {
  size_t count = 0;
  auto a = begin();
  auto b = other.begin();
  while (a != end() && b != other.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

TagSet TagSet::Intersect(const TagSet& other) const {
  TagSet out;
  auto a = begin();
  auto b = other.begin();
  while (a != end() && b != other.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      out.tags_.push_back(*a);
      ++a;
      ++b;
    }
  }
  return out;
}

TagSet TagSet::Union(const TagSet& other) const {
  TagSet out;
  auto a = begin();
  auto b = other.begin();
  while (a != end() || b != other.end()) {
    if (b == other.end() || (a != end() && *a < *b)) {
      out.tags_.push_back(*a++);
    } else if (a == end() || *b < *a) {
      out.tags_.push_back(*b++);
    } else {
      out.tags_.push_back(*a);
      ++a;
      ++b;
    }
  }
  return out;
}

size_t TagSet::Hash() const {
  // FNV-1a, folding in each tag id byte-wise.
  uint64_t h = 1469598103934665603ull;
  for (TagId t : tags_) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (t >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<size_t>(h);
}

std::string TagSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < tags_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(tags_[i]);
  }
  out += "}";
  return out;
}

}  // namespace corrtrack
