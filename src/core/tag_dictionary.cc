#include "core/tag_dictionary.h"

#include "core/check.h"

namespace corrtrack {

TagId TagDictionary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  CORRTRACK_CHECK_NE(id, kInvalidTag);
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<TagId> TagDictionary::Find(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view TagDictionary::Name(TagId id) const {
  CORRTRACK_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace corrtrack
