#ifndef CORRTRACK_CORE_SET_COVER_PHASE1_H_
#define CORRTRACK_CORE_SET_COVER_PHASE1_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/cooccurrence.h"
#include "core/partition.h"
#include "core/types.h"

namespace corrtrack {

/// The cost function c_i that Algorithm 2 plugs into the budgeted-maximum-
/// coverage greedy selection (§4.2).
enum class Phase1Cost {
  /// c_i = |s_i ∩ CV|: tags already covered — communication optimisation
  /// (SCC).
  kCommunication,
  /// c_i = |plop − pl_n|: distance of the candidate's load share from the
  /// optimal share 1/m at iteration m — load optimisation (SCL).
  kLoad,
  /// c_i = 0: plain maximum coverage, as in the earlier paper [1] (SCI).
  kZero,
};

/// Output of Algorithm 2: the k initial partitions (partition m holds the
/// m-th selected tagset), which tagsets were consumed, and the covered-tag
/// set CV that phase 2 continues from.
struct Phase1Result {
  PartitionSet partitions;
  std::vector<bool> assigned;  // Indexed like snapshot.tagsets().
  std::unordered_set<TagId> covered;
};

/// Runs Algorithm 2 over `snapshot` with the given cost function: in each of
/// (up to) k iterations selects the tagset with minimum cost, breaking ties
/// towards maximum newly covered tags |s \ CV|, then minimum tagset index
/// (deterministic).
Phase1Result RunSetCoverPhase1(const CooccurrenceSnapshot& snapshot, int k,
                               Phase1Cost cost);

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_SET_COVER_PHASE1_H_
