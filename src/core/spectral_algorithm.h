#ifndef CORRTRACK_CORE_SPECTRAL_ALGORITHM_H_
#define CORRTRACK_CORE_SPECTRAL_ALGORITHM_H_

#include "core/partitioning.h"

namespace corrtrack {

/// Spectral graph-partitioning baseline (§2, Donath & Hoffman [6]) with the
/// optional Kernighan–Lin refinement that [11] (Hendrickson & Leland)
/// showed improves the pure spectral cut.
///
/// Like KlAlgorithm, this exists to quantify the paper's related-work
/// claim that classic graph partitioning is too expensive for a stream
/// that repartitions every few thousand documents (bench/
/// baseline_comparison). Vertices are the distinct tagsets (so coverage
/// holds by construction); the algorithm recursively bisects by the
/// Fiedler vector — the eigenvector of the graph Laplacian's second-
/// smallest eigenvalue, approximated with deflated power iteration — and
/// cuts each bisection at the load-proportional point so the k parts stay
/// balanced.
class SpectralAlgorithm : public PartitioningAlgorithm {
 public:
  explicit SpectralAlgorithm(bool kl_refine = false,
                             int power_iterations = 60,
                             int kl_passes = 4)
      : kl_refine_(kl_refine),
        power_iterations_(power_iterations),
        kl_passes_(kl_passes) {}

  /// Named DS for the factory-facing enum only; spectral is a baseline
  /// outside the paper's evaluated four.
  AlgorithmKind kind() const override { return AlgorithmKind::kDS; }

  PartitionSet CreatePartitions(const CooccurrenceSnapshot& snapshot, int k,
                                uint64_t seed) const override;

 private:
  bool kl_refine_;
  int power_iterations_;
  int kl_passes_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_SPECTRAL_ALGORITHM_H_
