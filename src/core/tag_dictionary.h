#ifndef CORRTRACK_CORE_TAG_DICTIONARY_H_
#define CORRTRACK_CORE_TAG_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace corrtrack {

/// Interns tag strings (hashtags) to dense TagIds and back.
///
/// The Parser operator (§6.2) extracts hashtag strings from tweets; the rest
/// of the pipeline works exclusively with TagIds. Ids are assigned in first-
/// arrival order, so they are stable across a run and usable as dense array
/// indices.
///
/// Thread-compatible: concurrent const access is safe, mutation requires
/// external serialisation (the simulation runtime is single-threaded; the
/// threaded runtime keeps one dictionary per parser task).
class TagDictionary {
 public:
  TagDictionary() = default;

  TagDictionary(const TagDictionary&) = delete;
  TagDictionary& operator=(const TagDictionary&) = delete;

  /// Returns the id of `name`, interning it if unseen.
  TagId GetOrAdd(std::string_view name);

  /// Returns the id of `name` if interned.
  std::optional<TagId> Find(std::string_view name) const;

  /// Returns the name of `id`. `id` must have been returned by GetOrAdd.
  std::string_view Name(TagId id) const;

  /// Number of interned tags. Also the smallest id not yet in use.
  size_t size() const { return names_.size(); }

 private:
  // Heterogeneous lookup: string_view probes without a temporary
  // std::string (this map sits on the Parser's per-tweet hot path).
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, TagId, StringHash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_TAG_DICTIONARY_H_
