#ifndef CORRTRACK_CORE_UNION_FIND_H_
#define CORRTRACK_CORE_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace corrtrack {

/// Disjoint-set forest with path halving and union by size.
///
/// The DS partitioning algorithm (Algorithm 1) first groups tags into
/// connected components ("disjoint sets" in the paper's terminology): two
/// tags are connected when they co-occur in some document. This structure
/// makes that grouping near-linear in the number of (tag, document)
/// incidences.
class UnionFind {
 public:
  /// Creates `n` singleton sets, elements 0..n-1.
  explicit UnionFind(size_t n);

  /// Returns the representative of `x`'s set.
  size_t Find(size_t x);

  /// Merges the sets of `a` and `b`; returns the surviving representative.
  size_t Union(size_t a, size_t b);

  /// True when `a` and `b` are in the same set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Size of the set containing `x`.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// Number of distinct sets.
  size_t NumSets() const { return num_sets_; }

  size_t NumElements() const { return parent_.size(); }

  /// Groups all elements by representative. Result: one vector per set, in
  /// ascending order of smallest member; members ascend within each set.
  std::vector<std::vector<size_t>> Components();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_UNION_FIND_H_
