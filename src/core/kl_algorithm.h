#ifndef CORRTRACK_CORE_KL_ALGORITHM_H_
#define CORRTRACK_CORE_KL_ALGORITHM_H_

#include "core/partitioning.h"

namespace corrtrack {

/// Kernighan–Lin-style graph partitioning baseline (§2, [12]).
///
/// The paper's related-work section: classic graph partitioning (KL,
/// spectral) "could be used in our setting to create the partitions of
/// tag-sets. However, in a dynamic environment like ours all these
/// techniques are deemed computationally expensive considering ... any
/// partitioning computed will be valid/appropriate only for a short
/// period." This class exists to quantify that claim
/// (bench/baseline_comparison): its partitions are competitive, its
/// runtime is not.
///
/// Model (§4): vertices are the distinct tagsets; assigning a vertex to a
/// partition assigns all its tags, so coverage holds by construction. The
/// edge weight between two tagsets is their shared-tag count; the KL
/// objective (minimise the weight of cut edges under a load-balance
/// constraint) is exactly "tagsets sharing tags should be assigned to the
/// same partitions" with bounded imbalance.
///
/// Implementation: greedy balanced initialisation (largest-load first onto
/// the least-loaded partition), then `max_passes` rounds of single-vertex
/// moves in KL gain order: each pass repeatedly moves the vertex with the
/// best cut-weight gain whose move keeps every partition below
/// (1 + balance_slack) × ideal load, stopping when no positive-gain move
/// remains.
class KlAlgorithm : public PartitioningAlgorithm {
 public:
  explicit KlAlgorithm(int max_passes = 8, double balance_slack = 0.10)
      : max_passes_(max_passes), balance_slack_(balance_slack) {}

  /// Reported as DS for naming purposes only; KL is a baseline outside the
  /// paper's evaluated four.
  AlgorithmKind kind() const override { return AlgorithmKind::kDS; }

  PartitionSet CreatePartitions(const CooccurrenceSnapshot& snapshot, int k,
                                uint64_t seed) const override;

 private:
  int max_passes_;
  double balance_slack_;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_KL_ALGORITHM_H_
