#ifndef CORRTRACK_CORE_COOCCURRENCE_H_
#define CORRTRACK_CORE_COOCCURRENCE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/document.h"
#include "core/tagset.h"
#include "core/types.h"

namespace corrtrack {

/// A distinct co-occurring tagset s_j observed in a window, with the number
/// of documents annotated with exactly s_j (`count`) and its load
/// l_j = |{d : s_j ∩ tags(d) ≠ ∅}| — the number of documents annotated with
/// *any* tag of s_j (§4.2). For the DS algorithm the same quantity per
/// connected component is the component load (Algorithm 1, line 4).
struct TagsetStats {
  TagSet tags;
  uint64_t count = 0;
  uint64_t load = 0;
};

/// Statistics of one connected component of the tag co-occurrence graph.
struct ComponentStats {
  std::vector<TagId> tags;           // Ascending.
  std::vector<uint32_t> tagset_ids;  // Indices into snapshot tagsets().
  uint64_t load = 0;                 // Documents touching the component.
};

/// Immutable aggregate view of a window of documents: the distinct tagsets,
/// their multiplicities and loads, per-tag document counts, and the
/// connected components of the tag graph. This is the input all four
/// partitioning algorithms consume.
///
/// The snapshot can equally be built from weighted tagsets (tagset, count)
/// with no underlying documents — the Merger uses this to re-run a
/// partitioning algorithm over partition fragments proposed by the
/// Partitioners (§6.2), treating each fragment as a tagset whose count is
/// the fragment's load.
class CooccurrenceSnapshot {
 public:
  /// Aggregates documents (multiset of tagsets) into a snapshot.
  template <typename DocIterator>
  static CooccurrenceSnapshot FromDocuments(DocIterator first,
                                            DocIterator last) {
    std::vector<std::pair<TagSet, uint64_t>> weighted;
    std::unordered_map<TagSet, size_t, TagSetHash> index;
    for (DocIterator it = first; it != last; ++it) {
      const TagSet& tags = it->tags;
      if (tags.empty()) continue;
      auto [pos, inserted] = index.emplace(tags, weighted.size());
      if (inserted) {
        weighted.emplace_back(tags, 1);
      } else {
        ++weighted[pos->second].second;
      }
    }
    return CooccurrenceSnapshot(std::move(weighted));
  }

  /// Builds directly from distinct (tagset, count) pairs. Duplicate tagsets
  /// are merged.
  static CooccurrenceSnapshot FromWeightedTagsets(
      std::vector<std::pair<TagSet, uint64_t>> weighted);

  /// Distinct tagsets with count and load.
  const std::vector<TagsetStats>& tagsets() const { return tagsets_; }

  /// Total number of documents aggregated (sum of counts).
  uint64_t num_docs() const { return num_docs_; }

  /// Distinct tags, ascending.
  const std::vector<TagId>& tags() const { return tags_; }
  size_t num_tags() const { return tags_.size(); }

  /// Number of documents containing `tag` (0 if the tag is not in the
  /// snapshot).
  uint64_t TagCount(TagId tag) const;

  /// Indices (into tagsets()) of the tagsets containing `tag`; empty for
  /// unknown tags.
  const std::vector<uint32_t>& TagsetsWithTag(TagId tag) const;

  /// Load of an arbitrary tagset: number of documents containing any of its
  /// tags. Works for tagsets not present in the snapshot.
  uint64_t ComputeLoad(const TagSet& tags) const;

  /// Connected components of the tag graph (two tags connected when they
  /// co-occur in a tagset), ordered by descending load.
  const std::vector<ComponentStats>& components() const { return components_; }

 private:
  explicit CooccurrenceSnapshot(
      std::vector<std::pair<TagSet, uint64_t>> weighted);

  void BuildTagIndex();
  void ComputeTagsetLoads();
  void BuildComponents();

  std::vector<TagsetStats> tagsets_;
  uint64_t num_docs_ = 0;
  std::vector<TagId> tags_;
  std::unordered_map<TagId, uint32_t> tag_local_;  // TagId -> index in tags_.
  std::vector<uint64_t> tag_counts_;               // By local index.
  std::vector<std::vector<uint32_t>> tag_tagsets_;  // By local index.
  std::vector<ComponentStats> components_;

  // Scratch for ComputeLoad-style traversals (stamped visited marks).
  mutable std::vector<uint32_t> visit_stamp_;
  mutable uint32_t current_stamp_ = 0;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_COOCCURRENCE_H_
