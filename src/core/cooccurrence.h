#ifndef CORRTRACK_CORE_COOCCURRENCE_H_
#define CORRTRACK_CORE_COOCCURRENCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/document.h"
#include "core/flat_counter_table.h"
#include "core/tagset.h"
#include "core/types.h"

namespace corrtrack {

/// A distinct co-occurring tagset s_j observed in a window, with the number
/// of documents annotated with exactly s_j (`count`) and its load
/// l_j = |{d : s_j ∩ tags(d) ≠ ∅}| — the number of documents annotated with
/// *any* tag of s_j (§4.2). For the DS algorithm the same quantity per
/// connected component is the component load (Algorithm 1, line 4).
struct TagsetStats {
  TagSet tags;
  uint64_t count = 0;
  uint64_t load = 0;
};

/// Statistics of one connected component of the tag co-occurrence graph.
struct ComponentStats {
  std::vector<TagId> tags;           // Ascending.
  std::vector<uint32_t> tagset_ids;  // Indices into snapshot tagsets().
  uint64_t load = 0;                 // Documents touching the component.
};

/// Immutable aggregate view of a window of documents: the distinct tagsets,
/// their multiplicities and loads, per-tag document counts, and the
/// connected components of the tag graph. This is the input all four
/// partitioning algorithms consume.
///
/// The snapshot can equally be built from weighted tagsets (tagset, count)
/// with no underlying documents — the Merger uses this to re-run a
/// partitioning algorithm over partition fragments proposed by the
/// Partitioners (§6.2), treating each fragment as a tagset whose count is
/// the fragment's load.
class CooccurrenceSnapshot {
 public:
  /// Aggregates documents (multiset of tagsets) into a snapshot. Counting
  /// happens during collection (duplicate-heavy windows are the norm), so
  /// the buffered state scales with distinct tagsets, not documents;
  /// FlatTagSetMap iterates in insertion order, preserving the
  /// first-appearance order of distinct tagsets.
  template <typename DocIterator>
  static CooccurrenceSnapshot FromDocuments(DocIterator first,
                                            DocIterator last) {
    FlatTagSetMap<uint64_t> counts;
    for (DocIterator it = first; it != last; ++it) {
      if (it->tags.empty()) continue;
      ++counts[it->tags];
    }
    std::vector<std::pair<TagSet, uint64_t>> weighted;
    weighted.reserve(counts.size());
    for (auto& [tags, count] : counts) {
      weighted.emplace_back(std::move(tags), count);
    }
    // The map already guarantees distinct tagsets, so skip
    // FromWeightedTagsets' dedup sort and build directly.
    return CooccurrenceSnapshot(std::move(weighted));
  }

  /// Builds directly from distinct (tagset, count) pairs. Duplicate tagsets
  /// are merged.
  static CooccurrenceSnapshot FromWeightedTagsets(
      std::vector<std::pair<TagSet, uint64_t>> weighted);

  /// Distinct tagsets with count and load.
  const std::vector<TagsetStats>& tagsets() const { return tagsets_; }

  /// Total number of documents aggregated (sum of counts).
  uint64_t num_docs() const { return num_docs_; }

  /// Distinct tags, ascending.
  const std::vector<TagId>& tags() const { return tags_; }
  size_t num_tags() const { return tags_.size(); }

  /// Number of documents containing `tag` (0 if the tag is not in the
  /// snapshot).
  uint64_t TagCount(TagId tag) const;

  /// Indices (into tagsets()) of the tagsets containing `tag`; empty for
  /// unknown tags.
  const std::vector<uint32_t>& TagsetsWithTag(TagId tag) const;

  /// Load of an arbitrary tagset: number of documents containing any of its
  /// tags. Works for tagsets not present in the snapshot.
  uint64_t ComputeLoad(const TagSet& tags) const;

  /// Connected components of the tag graph (two tags connected when they
  /// co-occur in a tagset), ordered by descending load.
  const std::vector<ComponentStats>& components() const { return components_; }

 private:
  explicit CooccurrenceSnapshot(
      std::vector<std::pair<TagSet, uint64_t>> weighted);

  static constexpr uint32_t kNoLocalIndex = static_cast<uint32_t>(-1);

  void BuildTagIndex();
  void ComputeTagsetLoads();
  void BuildComponents();

  /// Index of `tag` in the ascending tags_ vector (binary search), or
  /// kNoLocalIndex for tags absent from the snapshot. A snapshot is rebuilt
  /// at every repartitioning round, so the index is a sorted vector rather
  /// than a hash map: one allocation, cache-linear construction.
  uint32_t LocalIndex(TagId tag) const;

  std::vector<TagsetStats> tagsets_;
  uint64_t num_docs_ = 0;
  std::vector<TagId> tags_;                         // Ascending; the index.
  std::vector<uint64_t> tag_counts_;                // By local index.
  std::vector<std::vector<uint32_t>> tag_tagsets_;  // By local index.
  std::vector<ComponentStats> components_;

  // Scratch for ComputeLoad-style traversals (stamped visited marks).
  mutable std::vector<uint32_t> visit_stamp_;
  mutable uint32_t current_stamp_ = 0;
};

}  // namespace corrtrack

#endif  // CORRTRACK_CORE_COOCCURRENCE_H_
