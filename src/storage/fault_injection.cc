#include "storage/fault_injection.h"

#include <algorithm>
#include <utility>

namespace corrtrack::storage {

namespace {

/// SplitMix64 — the repo's standard cheap seeded mix (cf. gen/).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool Applies(FaultKind kind, std::initializer_list<FaultKind> applicable) {
  return std::find(applicable.begin(), applicable.end(), kind) !=
         applicable.end();
}

}  // namespace

/// Wraps a writable file; write-side faults are drawn per operation from
/// the owning storage's shared schedule, so one op counter covers the
/// whole backend surface. Namespace scope (not anonymous) so it matches
/// the friend declaration in the header.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingStorage* owner,
                    std::unique_ptr<WritableFile> inner)
      : owner_(owner), inner_(std::move(inner)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingStorage* owner_;
  std::unique_ptr<WritableFile> inner_;
};

FaultInjectingStorage::FaultInjectingStorage(std::shared_ptr<Storage> inner,
                                             FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {}

FaultKind FaultInjectingStorage::Draw(
    std::initializer_list<FaultKind> applicable) {
  const uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed);
  for (const FaultRule& rule : plan_.rules) {
    if (rule.at_op == op && Applies(rule.kind, applicable)) {
      Count(rule.kind);
      return rule.kind;
    }
  }
  if (plan_.probability > 0.0 && !plan_.kinds.empty()) {
    const uint64_t roll = Mix(plan_.seed ^ op);
    const double unit =
        static_cast<double>(roll >> 11) * (1.0 / 9007199254740992.0);
    if (unit < plan_.probability) {
      const FaultKind kind =
          plan_.kinds[static_cast<size_t>(Mix(roll) % plan_.kinds.size())];
      if (Applies(kind, applicable)) {
        Count(kind);
        return kind;
      }
    }
  }
  return FaultKind::kNone;
}

void FaultInjectingStorage::Count(FaultKind kind) {
  total_faults_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
}

FaultStats FaultInjectingStorage::stats() const {
  FaultStats stats;
  stats.total = total_faults_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    stats.by_kind[static_cast<size_t>(i)] =
        by_kind_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return stats;
}

namespace {

Status FaultStatus(FaultKind kind, const std::string& what) {
  switch (kind) {
    case FaultKind::kNoSpace:
      return Status::NoSpace("injected ENOSPC: " + what);
    case FaultKind::kFsyncFail:
      return Status::IOError("injected fsync failure: " + what);
    case FaultKind::kTornRename:
      return Status::IOError("injected torn rename: " + what);
    case FaultKind::kTransient:
      return Status::Unavailable("injected transient fault: " + what);
    default:
      return Status::IOError("injected fault: " + what);
  }
}

}  // namespace

Status FaultWritableFile::Append(std::string_view data) {
  const FaultKind fault = owner_->Draw(
      {FaultKind::kShortWrite, FaultKind::kNoSpace, FaultKind::kTransient});
  if (fault == FaultKind::kShortWrite) {
    // Silent damage: half the bytes land, the call reports success — only
    // a read-time checksum can catch this.
    return inner_->Append(data.substr(0, data.size() / 2));
  }
  if (fault != FaultKind::kNone) return FaultStatus(fault, "append");
  return inner_->Append(data);
}

Status FaultWritableFile::Sync() {
  const FaultKind fault =
      owner_->Draw({FaultKind::kFsyncFail, FaultKind::kTransient});
  if (fault == FaultKind::kFsyncFail) return FaultStatus(fault, "sync");
  if (fault != FaultKind::kNone) return FaultStatus(fault, "sync");
  return inner_->Sync();
}

Status FaultWritableFile::Close() {
  // Close is not a fault point: the durability decision already happened
  // at Sync, and a close failure after a successful fsync is benign.
  return inner_->Close();
}

Status FaultInjectingStorage::NewWritableFile(
    const std::string& path, std::unique_ptr<WritableFile>* file) {
  const FaultKind fault = Draw({FaultKind::kTransient});
  if (fault != FaultKind::kNone) return FaultStatus(fault, "open " + path);
  std::unique_ptr<WritableFile> inner;
  const Status status = inner_->NewWritableFile(path, &inner);
  if (!status.ok()) return status;
  *file = std::make_unique<FaultWritableFile>(this, std::move(inner));
  return Status::OK();
}

Status FaultInjectingStorage::ReadFile(const std::string& path,
                                       std::string* out) {
  const FaultKind fault =
      Draw({FaultKind::kReadCorruption, FaultKind::kTransient});
  if (fault == FaultKind::kTransient) {
    return FaultStatus(fault, "read " + path);
  }
  const Status status = inner_->ReadFile(path, out);
  if (!status.ok()) return status;
  if (fault == FaultKind::kReadCorruption && !out->empty()) {
    const uint64_t roll = Mix(plan_.seed ^ ops());
    const size_t pos = static_cast<size_t>(roll % out->size());
    (*out)[pos] = static_cast<char>((*out)[pos] ^ (1u << (roll % 8)));
  }
  return Status::OK();
}

Status FaultInjectingStorage::FileExists(const std::string& path) {
  const FaultKind fault = Draw({FaultKind::kTransient});
  if (fault != FaultKind::kNone) return FaultStatus(fault, "stat " + path);
  return inner_->FileExists(path);
}

Status FaultInjectingStorage::CreateDirs(const std::string& path) {
  const FaultKind fault = Draw({FaultKind::kTransient});
  if (fault != FaultKind::kNone) return FaultStatus(fault, "mkdir " + path);
  return inner_->CreateDirs(path);
}

Status FaultInjectingStorage::DeleteFile(const std::string& path) {
  const FaultKind fault = Draw({FaultKind::kTransient});
  if (fault != FaultKind::kNone) return FaultStatus(fault, "unlink " + path);
  return inner_->DeleteFile(path);
}

Status FaultInjectingStorage::RenameFile(const std::string& from,
                                         const std::string& to) {
  const FaultKind fault =
      Draw({FaultKind::kTornRename, FaultKind::kTransient});
  if (fault != FaultKind::kNone) {
    return FaultStatus(fault, "rename " + from + " -> " + to);
  }
  return inner_->RenameFile(from, to);
}

Status FaultInjectingStorage::ListDirectory(const std::string& path,
                                            std::vector<std::string>* names) {
  const FaultKind fault = Draw({FaultKind::kTransient});
  if (fault != FaultKind::kNone) return FaultStatus(fault, "list " + path);
  return inner_->ListDirectory(path, names);
}

Status FaultInjectingStorage::DeleteDirRecursive(const std::string& path) {
  // Cleanup path: never fault-injected, so a failed checkpoint can always
  // scrub its partial directory (matching real deployments, where cleanup
  // failures are retried by the next checkpoint's scrub anyway).
  return inner_->DeleteDirRecursive(path);
}

}  // namespace corrtrack::storage
