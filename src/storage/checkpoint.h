#ifndef CORRTRACK_STORAGE_CHECKPOINT_H_
#define CORRTRACK_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/status.h"
#include "storage/storage.h"

namespace corrtrack::storage {

/// Retry policy for transient (StatusCode::kUnavailable) storage errors.
/// Attempt n sleeps base_backoff_ms * 2^(n-1) before retrying; permanent
/// errors never retry. `sleeper` is injectable so the fault-matrix tests
/// run without wall-clock sleeps.
struct RetryPolicy {
  int max_attempts = 4;
  int base_backoff_ms = 5;
  std::function<void(int ms)> sleeper;  // Default: std::this_thread::sleep_for.
};

/// Runs `op` under `policy`, counting retries into `*retries` (may be
/// null). Returns the first permanent error, the last transient error when
/// attempts run out, or OK.
Status RetryOp(const RetryPolicy& policy, uint64_t* retries,
               const std::function<Status()>& op);

/// One named section of a checkpoint — a chunk file on storage. The
/// pipeline capture layer (ops/pipeline_checkpoint.h) makes one section
/// per component instance, which is the unit of restore parallelism.
struct CheckpointSection {
  std::string name;
  std::string payload;
};

/// A complete checkpoint in memory: the epoch-cut header plus the
/// sections. The header fields travel in the manifest, so discovery can
/// pick a checkpoint without touching any chunk.
struct CheckpointData {
  uint64_t seq = 0;             ///< Monotone checkpoint number.
  uint64_t docs_ingested = 0;   ///< Spout position of the cut.
  int64_t last_time = 0;        ///< Newest virtual timestamp emitted.
  uint32_t epoch = 0;           ///< Partition epoch at the cut.
  int32_t live_calculators = 0;
  int32_t max_calculators = 0;
  uint64_t config_fingerprint = 0;  ///< Restore refuses a mismatch.
  /// False when the barrier cut caught protocol state still in flight
  /// (e.g. an unfinished repartition round); the checkpoint is still
  /// written (durability first) but flagged for observability.
  bool clean_cut = true;
  std::vector<CheckpointSection> sections;
};

/// On-disk layout, all frames CRC-32C checksummed:
///
///   <root>/checkpoint_<seq>/<section>.chunk   one frame per section
///   <root>/checkpoint_<seq>/MANIFEST          commit point (renamed last)
///
/// Chunk frame:    [magic "CTC1"][u32 crc(payload)][u64 size][payload]
/// Manifest:       [magic "CTM1"][header][chunk table][u32 crc(all prior)]
///
/// Commit discipline: every chunk is written and fsynced before the
/// manifest; the manifest is written to MANIFEST.tmp, fsynced, then
/// atomically renamed to MANIFEST. A reader only trusts a directory with a
/// valid manifest, so a torn checkpoint — crash or injected fault at any
/// point before the rename — is simply invisible, and the previous
/// checkpoint remains the latest.
class CheckpointWriter {
 public:
  /// `keep` >= 1: checkpoints retained after a successful write (older
  /// ones are garbage-collected; GC failures are ignored — the next
  /// write retries them).
  CheckpointWriter(std::shared_ptr<Storage> storage, std::string root,
                   RetryPolicy retry = RetryPolicy(), int keep = 2);

  /// Writes one checkpoint. On failure the partial directory is scrubbed
  /// (best effort) and any previously committed checkpoint is untouched.
  /// `bytes_written`/`chunks_written` (optional) report the payload volume.
  Status Write(const CheckpointData& data, uint64_t* bytes_written = nullptr,
               uint64_t* chunks_written = nullptr);

  /// Transient-error retries performed so far (cumulative).
  uint64_t retries() const { return retries_; }

 private:
  Status WriteFileDurably(const std::string& path, const std::string& frame);

  std::shared_ptr<Storage> storage_;
  std::string root_;
  RetryPolicy retry_;
  int keep_;
  uint64_t retries_ = 0;
};

/// Reads checkpoints back, chunk-parallel: the manifest names every chunk,
/// so `num_threads` workers fan out over the chunk table, each validating
/// its frames' checksums before the payload is accepted. Any mismatch
/// fails the restore with kCorruption — a damaged chunk is never silently
/// loaded.
class CheckpointReader {
 public:
  CheckpointReader(std::shared_ptr<Storage> storage, std::string root,
                   RetryPolicy retry = RetryPolicy(), int num_threads = 4);

  /// Sequence numbers of every *valid* checkpoint under the root
  /// (manifest present and self-consistent), ascending. An empty list with
  /// OK means the root exists but holds no usable checkpoint.
  Status ListValid(std::vector<uint64_t>* seqs);

  /// Loads checkpoint `seq` (manifest + all chunks, checksum-verified).
  Status Read(uint64_t seq, CheckpointData* out);

  /// Loads the newest valid checkpoint; kNotFound when none exists.
  Status ReadLatest(CheckpointData* out);

  uint64_t retries() const { return retries_; }
  /// Chunks loaded by the last successful Read (restore_chunks metric).
  uint64_t last_restore_chunks() const { return last_restore_chunks_; }

 private:
  Status ReadManifest(uint64_t seq, CheckpointData* out,
                      std::vector<std::pair<uint64_t, uint32_t>>* chunk_meta);

  std::shared_ptr<Storage> storage_;
  std::string root_;
  RetryPolicy retry_;
  int num_threads_;
  uint64_t retries_ = 0;
  uint64_t last_restore_chunks_ = 0;
};

/// Directory name for checkpoint `seq` ("checkpoint_0000000042").
std::string CheckpointDirName(uint64_t seq);

}  // namespace corrtrack::storage

#endif  // CORRTRACK_STORAGE_CHECKPOINT_H_
