#include "storage/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "storage/crc32c.h"
#include "storage/serialize.h"
#include "telemetry/log.h"

namespace corrtrack::storage {

namespace {

constexpr uint32_t kChunkMagic = 0x31435443u;     // "CTC1" little-endian.
constexpr uint32_t kManifestMagic = 0x314d5443u;  // "CTM1".
constexpr uint32_t kFormatVersion = 1;
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";
constexpr char kDirPrefix[] = "checkpoint_";

std::string EncodeChunkFrame(const std::string& payload) {
  ByteWriter w;
  w.PutU32(kChunkMagic);
  w.PutU32(Crc32c::Of(payload));
  w.PutU64(payload.size());
  const std::string& header = w.str();
  std::string frame;
  frame.reserve(header.size() + payload.size());
  frame.append(header);
  frame.append(payload);
  return frame;
}

Status DecodeChunkFrame(const std::string& frame, const std::string& what,
                        uint64_t expect_size, uint32_t expect_crc,
                        std::string* payload) {
  ByteReader r(frame);
  uint32_t magic = 0;
  uint32_t crc = 0;
  uint64_t size = 0;
  if (!r.GetU32(&magic) || !r.GetU32(&crc) || !r.GetU64(&size)) {
    return Status::Corruption("truncated chunk header: " + what);
  }
  if (magic != kChunkMagic) {
    return Status::Corruption("bad chunk magic: " + what);
  }
  if (size != r.remaining() || size != expect_size || crc != expect_crc) {
    return Status::Corruption("chunk size/crc does not match manifest: " +
                              what);
  }
  // The frame body is everything after the fixed header.
  const size_t header_size = sizeof(uint32_t) * 2 + sizeof(uint64_t);
  std::string_view raw(frame);
  raw.remove_prefix(header_size);
  if (Crc32c::Of(raw) != crc) {
    return Status::Corruption("chunk checksum mismatch: " + what);
  }
  payload->assign(raw.data(), raw.size());
  return Status::OK();
}

}  // namespace

std::string CheckpointDirName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%010llu", kDirPrefix,
                static_cast<unsigned long long>(seq));
  return buf;
}

Status RetryOp(const RetryPolicy& policy, uint64_t* retries,
               const std::function<Status()>& op) {
  const int attempts = std::max(1, policy.max_attempts);
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = op();
    if (status.ok() || !status.IsTransient()) return status;
    if (attempt == attempts) break;
    if (retries != nullptr) ++*retries;
    const int backoff_ms = policy.base_backoff_ms << (attempt - 1);
    if (backoff_ms > 0) {
      if (policy.sleeper) {
        policy.sleeper(backoff_ms);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
    }
  }
  return status;
}

// ---------------------------------------------------------------------------
// Writer

CheckpointWriter::CheckpointWriter(std::shared_ptr<Storage> storage,
                                   std::string root, RetryPolicy retry,
                                   int keep)
    : storage_(std::move(storage)),
      root_(std::move(root)),
      retry_(std::move(retry)),
      keep_(std::max(1, keep)) {}

Status CheckpointWriter::WriteFileDurably(const std::string& path,
                                          const std::string& frame) {
  // Whole-file retry granularity: a transient failure anywhere in
  // open/append/sync restarts the file from scratch (O_TRUNC), so a
  // half-appended attempt can never survive into the retried one.
  return RetryOp(retry_, &retries_, [&]() {
    std::unique_ptr<WritableFile> file;
    Status status = storage_->NewWritableFile(path, &file);
    if (!status.ok()) return status;
    status = file->Append(frame);
    if (!status.ok()) return status;
    status = file->Sync();
    if (!status.ok()) return status;
    return file->Close();
  });
}

Status CheckpointWriter::Write(const CheckpointData& data,
                               uint64_t* bytes_written,
                               uint64_t* chunks_written) {
  if (bytes_written != nullptr) *bytes_written = 0;
  if (chunks_written != nullptr) *chunks_written = 0;
  const std::string dir = JoinPath(root_, CheckpointDirName(data.seq));

  Status status = RetryOp(retry_, &retries_,
                          [&]() { return storage_->CreateDirs(dir); });
  if (!status.ok()) return status;
  // Scrub leftovers of a previously failed attempt at this seq, so stale
  // chunks can never be picked up by the manifest written below.
  if (storage_->FileExists(JoinPath(dir, kManifestTmpName)).ok()) {
    (void)storage_->DeleteFile(JoinPath(dir, kManifestTmpName));
  }

  uint64_t bytes = 0;
  ByteWriter manifest;
  manifest.PutU32(kManifestMagic);
  manifest.PutU32(kFormatVersion);
  manifest.PutU64(data.seq);
  manifest.PutU64(data.docs_ingested);
  manifest.PutI64(data.last_time);
  manifest.PutU32(data.epoch);
  manifest.PutU32(static_cast<uint32_t>(data.live_calculators));
  manifest.PutU32(static_cast<uint32_t>(data.max_calculators));
  manifest.PutU64(data.config_fingerprint);
  manifest.PutU8(data.clean_cut ? 1 : 0);
  manifest.PutU32(static_cast<uint32_t>(data.sections.size()));

  for (const CheckpointSection& section : data.sections) {
    const std::string frame = EncodeChunkFrame(section.payload);
    status = WriteFileDurably(JoinPath(dir, section.name + ".chunk"), frame);
    if (!status.ok()) {
      (void)storage_->DeleteDirRecursive(dir);
      return status;
    }
    bytes += frame.size();
    manifest.PutBytes(section.name);
    manifest.PutU64(section.payload.size());
    manifest.PutU32(Crc32c::Of(section.payload));
  }

  // Self-checksummed tail: a torn manifest write (crash before the rename
  // completed, short write, bit rot) fails validation and the whole
  // directory is treated as absent.
  std::string manifest_bytes = manifest.Take();
  {
    ByteWriter tail;
    tail.PutU32(Crc32c::Of(manifest_bytes));
    manifest_bytes += tail.str();
  }
  status = WriteFileDurably(JoinPath(dir, kManifestTmpName), manifest_bytes);
  if (!status.ok()) {
    (void)storage_->DeleteDirRecursive(dir);
    return status;
  }
  status = RetryOp(retry_, &retries_, [&]() {
    return storage_->RenameFile(JoinPath(dir, kManifestTmpName),
                                JoinPath(dir, kManifestName));
  });
  if (!status.ok()) {
    (void)storage_->DeleteDirRecursive(dir);
    return status;
  }
  bytes += manifest_bytes.size();
  if (bytes_written != nullptr) *bytes_written = bytes;
  if (chunks_written != nullptr) {
    *chunks_written = static_cast<uint64_t>(data.sections.size());
  }

  // Retention GC — only after a successful commit, and never the one just
  // written. Failures here are ignored: the directory will be re-listed
  // and re-scrubbed on the next write.
  std::vector<std::string> names;
  if (storage_->ListDirectory(root_, &names).ok()) {
    std::vector<uint64_t> seqs;
    for (const std::string& name : names) {
      if (name.rfind(kDirPrefix, 0) != 0) continue;
      const uint64_t seq =
          std::strtoull(name.c_str() + sizeof(kDirPrefix) - 1, nullptr, 10);
      if (seq < data.seq) seqs.push_back(seq);
    }
    std::sort(seqs.begin(), seqs.end());
    const int excess = static_cast<int>(seqs.size()) - (keep_ - 1);
    for (int i = 0; i < excess; ++i) {
      (void)storage_->DeleteDirRecursive(
          JoinPath(root_, CheckpointDirName(seqs[static_cast<size_t>(i)])));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reader

CheckpointReader::CheckpointReader(std::shared_ptr<Storage> storage,
                                   std::string root, RetryPolicy retry,
                                   int num_threads)
    : storage_(std::move(storage)),
      root_(std::move(root)),
      retry_(std::move(retry)),
      num_threads_(std::max(1, num_threads)) {}

Status CheckpointReader::ReadManifest(
    uint64_t seq, CheckpointData* out,
    std::vector<std::pair<uint64_t, uint32_t>>* chunk_meta) {
  const std::string path =
      JoinPath(JoinPath(root_, CheckpointDirName(seq)), kManifestName);
  std::string bytes;
  Status status = RetryOp(retry_, &retries_, [&]() {
    return storage_->ReadFile(path, &bytes);
  });
  if (!status.ok()) return status;
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::Corruption("manifest truncated: " + path);
  }
  const std::string_view body(bytes.data(), bytes.size() - sizeof(uint32_t));
  ByteReader tail(
      std::string_view(bytes.data() + body.size(), sizeof(uint32_t)));
  uint32_t stored_crc = 0;
  tail.GetU32(&stored_crc);
  if (Crc32c::Of(body) != stored_crc) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }

  ByteReader r(body);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t epoch = 0;
  uint32_t live = 0;
  uint32_t max = 0;
  uint8_t clean = 0;
  uint32_t num_chunks = 0;
  if (!r.GetU32(&magic) || magic != kManifestMagic || !r.GetU32(&version) ||
      version != kFormatVersion || !r.GetU64(&out->seq) ||
      !r.GetU64(&out->docs_ingested) || !r.GetI64(&out->last_time) ||
      !r.GetU32(&epoch) || !r.GetU32(&live) || !r.GetU32(&max) ||
      !r.GetU64(&out->config_fingerprint) || !r.GetU8(&clean) ||
      !r.GetU32(&num_chunks)) {
    return Status::Corruption("manifest header malformed: " + path);
  }
  out->epoch = epoch;
  out->live_calculators = static_cast<int32_t>(live);
  out->max_calculators = static_cast<int32_t>(max);
  out->clean_cut = clean != 0;
  out->sections.clear();
  out->sections.resize(num_chunks);
  chunk_meta->clear();
  chunk_meta->resize(num_chunks);
  for (uint32_t i = 0; i < num_chunks; ++i) {
    uint64_t size = 0;
    uint32_t crc = 0;
    if (!r.GetString(&out->sections[i].name) || !r.GetU64(&size) ||
        !r.GetU32(&crc)) {
      return Status::Corruption("manifest chunk table malformed: " + path);
    }
    (*chunk_meta)[i] = {size, crc};
  }
  return Status::OK();
}

Status CheckpointReader::Read(uint64_t seq, CheckpointData* out) {
  std::vector<std::pair<uint64_t, uint32_t>> chunk_meta;
  Status status = ReadManifest(seq, out, &chunk_meta);
  if (!status.ok()) return status;

  const std::string dir = JoinPath(root_, CheckpointDirName(seq));
  // Chunk-parallel restore: workers claim chunk indices off a shared
  // counter; each chunk's frame checksum AND its manifest-recorded
  // size/crc must match before the payload is accepted.
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> retry_count{0};
  std::mutex error_mutex;
  Status first_error;
  const auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= out->sections.size()) return;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) return;
      }
      CheckpointSection& section = out->sections[i];
      const std::string path = JoinPath(dir, section.name + ".chunk");
      std::string frame;
      uint64_t local_retries = 0;
      Status s = RetryOp(retry_, &local_retries, [&]() {
        return storage_->ReadFile(path, &frame);
      });
      retry_count.fetch_add(local_retries, std::memory_order_relaxed);
      if (s.ok()) {
        s = DecodeChunkFrame(frame, path, chunk_meta[i].first,
                             chunk_meta[i].second, &section.payload);
      }
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = s;
        return;
      }
    }
  };

  const int threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads_),
                       std::max<size_t>(1, out->sections.size())));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  retries_ += retry_count.load(std::memory_order_relaxed);
  if (!first_error.ok()) return first_error;
  last_restore_chunks_ = out->sections.size();
  return Status::OK();
}

Status CheckpointReader::ListValid(std::vector<uint64_t>* seqs) {
  seqs->clear();
  std::vector<std::string> names;
  Status status = RetryOp(retry_, &retries_, [&]() {
    return storage_->ListDirectory(root_, &names);
  });
  if (status.code() == StatusCode::kNotFound) return Status::OK();
  if (!status.ok()) return status;
  for (const std::string& name : names) {
    if (name.rfind(kDirPrefix, 0) != 0) continue;
    const uint64_t seq =
        std::strtoull(name.c_str() + sizeof(kDirPrefix) - 1, nullptr, 10);
    CheckpointData manifest_only;
    std::vector<std::pair<uint64_t, uint32_t>> chunk_meta;
    if (ReadManifest(seq, &manifest_only, &chunk_meta).ok()) {
      seqs->push_back(seq);
    }
  }
  std::sort(seqs->begin(), seqs->end());
  return Status::OK();
}

Status CheckpointReader::ReadLatest(CheckpointData* out) {
  std::vector<uint64_t> seqs;
  Status status = ListValid(&seqs);
  if (!status.ok()) return status;
  // Newest first; fall back to older checkpoints when a newer one turns
  // out to be damaged at chunk depth (its manifest validated, a chunk did
  // not) — graceful degradation over hard failure.
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    status = Read(*it, out);
    if (status.ok()) return status;
    if (status.IsTransient()) return status;  // Storage down, not damage.
    CORRTRACK_LOG(kWarn, "checkpoint",
                  "seq %llu damaged (%s); falling back to an older checkpoint",
                  static_cast<unsigned long long>(*it),
                  status.ToString().c_str());
  }
  return seqs.empty()
             ? Status::NotFound("no valid checkpoint under " + root_)
             : status;
}

}  // namespace corrtrack::storage
