#ifndef CORRTRACK_STORAGE_FAULT_INJECTION_H_
#define CORRTRACK_STORAGE_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage.h"

namespace corrtrack::storage {

/// The fault classes the decorator can inject. Two families:
///  * silent data damage (kShortWrite, kReadCorruption) — the operation
///    *succeeds*; only the checkpoint frame CRCs can catch it, which is
///    what the corruption-detection tests pin.
///  * reported errors (kNoSpace, kFsyncFail, kTornRename, kTransient) —
///    the operation returns a Status; kTransient is the only retryable one.
enum class FaultKind : uint8_t {
  kNone = 0,
  kShortWrite,      ///< Append silently drops a suffix of the data.
  kNoSpace,         ///< Append fails with kNoSpace (ENOSPC mid-write).
  kFsyncFail,       ///< Sync fails with kIOError; durability unknown.
  kReadCorruption,  ///< ReadFile succeeds but one bit is flipped.
  kTornRename,      ///< RenameFile fails; the destination never appears.
  kTransient,       ///< Any operation fails once with kUnavailable.
};

inline constexpr int kNumFaultKinds = 7;

inline const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kNoSpace:
      return "no_space";
    case FaultKind::kFsyncFail:
      return "fsync_fail";
    case FaultKind::kReadCorruption:
      return "read_corruption";
    case FaultKind::kTornRename:
      return "torn_rename";
    case FaultKind::kTransient:
      return "transient";
  }
  return "unknown";
}

/// One deterministic trigger: the `at_op`-th storage operation (the
/// decorator numbers every call, including WritableFile ops) suffers
/// `kind`. The fault-matrix tests aim these at exact protocol steps.
struct FaultRule {
  uint64_t at_op = 0;
  FaultKind kind = FaultKind::kNone;
};

/// Seeded fault schedule. `probability` rolls an independent SplitMix64
/// per operation index — deterministic for a given seed regardless of
/// thread interleaving (the index, not wall time, drives the roll), so a
/// failing sweep seed replays exactly. A rolled kind that cannot apply to
/// the operation at hand (e.g. kShortWrite on a read) injects nothing.
struct FaultPlan {
  uint64_t seed = 0;
  double probability = 0.0;
  std::vector<FaultKind> kinds = {
      FaultKind::kShortWrite, FaultKind::kNoSpace,  FaultKind::kFsyncFail,
      FaultKind::kReadCorruption, FaultKind::kTornRename,
      FaultKind::kTransient};
  std::vector<FaultRule> rules;

  bool enabled() const { return probability > 0.0 || !rules.empty(); }
};

/// Injection counters, by class.
struct FaultStats {
  uint64_t total = 0;
  std::array<uint64_t, kNumFaultKinds> by_kind{};

  uint64_t count(FaultKind kind) const {
    return by_kind[static_cast<size_t>(kind)];
  }
};

/// Decorator that wraps any backend in the seeded fault schedule. All
/// checkpoint I/O in this repo goes through a Storage*, so wrapping here
/// exercises every path the real backends have.
class FaultInjectingStorage : public Storage {
 public:
  FaultInjectingStorage(std::shared_ptr<Storage> inner, FaultPlan plan);

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status FileExists(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status ListDirectory(const std::string& path,
                       std::vector<std::string>* names) override;
  Status DeleteDirRecursive(const std::string& path) override;
  const char* name() const override { return "fault-injecting"; }

  FaultStats stats() const;
  uint64_t ops() const { return op_counter_.load(std::memory_order_relaxed); }

 private:
  friend class FaultWritableFile;

  /// Draws the fault (if any) for the next operation, restricted to the
  /// kinds in `applicable`. Returns kNone when the op proceeds cleanly.
  FaultKind Draw(std::initializer_list<FaultKind> applicable);
  void Count(FaultKind kind);

  std::shared_ptr<Storage> inner_;
  FaultPlan plan_;
  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> total_faults_{0};
  std::array<std::atomic<uint64_t>, kNumFaultKinds> by_kind_{};
};

}  // namespace corrtrack::storage

#endif  // CORRTRACK_STORAGE_FAULT_INJECTION_H_
