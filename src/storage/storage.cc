#include "storage/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <system_error>

namespace corrtrack::storage {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string msg = op + " " + path + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(msg);
    case ENOSPC:
    case EDQUOT:
      return Status::NoSpace(msg);
    case EAGAIN:
    case EINTR:
      return Status::Unavailable(msg);
    default:
      return Status::IOError(msg);
  }
}

/// Normalises a backend path: '/'-rooted, no trailing separator (so the
/// memory backend's string keys compare consistently however callers join).
std::string NormalizePath(std::string_view path) {
  std::string p;
  p.reserve(path.size() + 1);
  if (path.empty() || path[0] != '/') p.push_back('/');
  char prev = 0;
  for (char c : path) {
    if (c == '/' && prev == '/') continue;
    p.push_back(c);
    prev = c;
  }
  while (p.size() > 1 && p.back() == '/') p.pop_back();
  return p;
}

// ---------------------------------------------------------------------------
// Posix backend (file://)

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixStorage : public Storage {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    *file = std::make_unique<PosixWritableFile>(fd, path);
    return Status::OK();
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    out->clear();
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  Status FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path, errno);
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status ListDirectory(const std::string& path,
                       std::vector<std::string>* names) override {
    names->clear();
    std::error_code ec;
    std::filesystem::directory_iterator it(path, ec);
    if (ec) {
      return ec == std::errc::no_such_file_or_directory
                 ? Status::NotFound("list " + path)
                 : Status::IOError("list " + path + ": " + ec.message());
    }
    for (const auto& entry : it) {
      names->push_back(entry.path().filename().string());
    }
    return Status::OK();
  }

  Status DeleteDirRecursive(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
    if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
    return Status::OK();
  }

  const char* name() const override { return "posix"; }
};

}  // namespace

// ---------------------------------------------------------------------------
// Memory backend (mem://) — one process-global filesystem under a mutex.

struct MemoryStorage::Impl {
  std::mutex mutex;
  std::map<std::string, std::string> files;  // Normalised path -> contents.
  std::set<std::string> dirs;                // Normalised paths; "/" implied.
};

// Namespace scope (not anonymous) so it matches the friend declaration in
// the header and can see MemoryStorage::Impl.
class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<MemoryStorage::Impl> impl, std::string path)
      : impl_(std::move(impl)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    // Publish on sync: before the first Sync the object is this file's
    // private buffer, mirroring a page cache that hasn't been flushed.
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->files[path_] = buffer_;
    return Status::OK();
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->files[path_] = buffer_;
    return Status::OK();
  }

 private:
  std::shared_ptr<MemoryStorage::Impl> impl_;
  std::string path_;
  std::string buffer_;
};

MemoryStorage::MemoryStorage() : impl_(std::make_shared<Impl>()) {}

MemoryStorage* MemoryStorage::Global() {
  static MemoryStorage* const kGlobal = new MemoryStorage();
  return kGlobal;
}

Status MemoryStorage::NewWritableFile(const std::string& path,
                                      std::unique_ptr<WritableFile>* file) {
  *file = std::make_unique<MemWritableFile>(impl_, NormalizePath(path));
  return Status::OK();
}

Status MemoryStorage::ReadFile(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->files.find(NormalizePath(path));
  if (it == impl_->files.end()) return Status::NotFound("read " + path);
  *out = it->second;
  return Status::OK();
}

Status MemoryStorage::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::string p = NormalizePath(path);
  if (impl_->files.count(p) > 0 || impl_->dirs.count(p) > 0) {
    return Status::OK();
  }
  return Status::NotFound("stat " + path);
}

Status MemoryStorage::CreateDirs(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string p = NormalizePath(path);
  // Register every ancestor so ListDirectory sees intermediate levels.
  while (p.size() > 1) {
    impl_->dirs.insert(p);
    const size_t slash = p.rfind('/');
    if (slash == 0 || slash == std::string::npos) break;
    p.resize(slash);
  }
  return Status::OK();
}

Status MemoryStorage::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->files.erase(NormalizePath(path)) == 0) {
    return Status::NotFound("unlink " + path);
  }
  return Status::OK();
}

Status MemoryStorage::RenameFile(const std::string& from,
                                 const std::string& to) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->files.find(NormalizePath(from));
  if (it == impl_->files.end()) return Status::NotFound("rename " + from);
  impl_->files[NormalizePath(to)] = std::move(it->second);
  impl_->files.erase(it);
  return Status::OK();
}

Status MemoryStorage::ListDirectory(const std::string& path,
                                    std::vector<std::string>* names) {
  names->clear();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::string p = NormalizePath(path);
  if (p != "/" && impl_->dirs.count(p) == 0) {
    return Status::NotFound("list " + path);
  }
  const std::string prefix = p == "/" ? "/" : p + "/";
  std::set<std::string> children;
  const auto child_of = [&](const std::string& key) {
    if (key.size() <= prefix.size() || key.compare(0, prefix.size(), prefix)) {
      return;
    }
    const std::string rest = key.substr(prefix.size());
    const size_t slash = rest.find('/');
    children.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  };
  for (const auto& [key, value] : impl_->files) child_of(key);
  for (const std::string& dir : impl_->dirs) child_of(dir);
  names->assign(children.begin(), children.end());
  return Status::OK();
}

Status MemoryStorage::DeleteDirRecursive(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::string p = NormalizePath(path);
  const std::string prefix = p == "/" ? "/" : p + "/";
  const auto is_under = [&](const std::string& key) {
    return key == p || key.compare(0, prefix.size(), prefix) == 0;
  };
  for (auto it = impl_->files.begin(); it != impl_->files.end();) {
    it = is_under(it->first) ? impl_->files.erase(it) : std::next(it);
  }
  for (auto it = impl_->dirs.begin(); it != impl_->dirs.end();) {
    it = is_under(*it) ? impl_->dirs.erase(it) : std::next(it);
  }
  return Status::OK();
}

void MemoryStorage::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->files.clear();
  impl_->dirs.clear();
}

// ---------------------------------------------------------------------------
// URI dispatch

std::string JoinPath(std::string_view base, std::string_view name) {
  std::string joined(base);
  if (!joined.empty() && joined.back() == '/') joined.pop_back();
  joined.push_back('/');
  while (!name.empty() && name.front() == '/') name.remove_prefix(1);
  joined.append(name.data(), name.size());
  return joined;
}

Status OpenStorage(std::string_view uri, OpenedStorage* out) {
  std::string_view scheme = "file";
  std::string_view path = uri;
  const size_t sep = uri.find("://");
  if (sep != std::string_view::npos) {
    scheme = uri.substr(0, sep);
    path = uri.substr(sep + 3);
  }
  if (path.empty()) {
    return Status::InvalidArgument("storage URI has no path: " +
                                   std::string(uri));
  }
  if (scheme == "file") {
    static const std::shared_ptr<Storage> kPosix =
        std::make_shared<PosixStorage>();
    out->storage = kPosix;
    out->root = NormalizePath(path);
    return Status::OK();
  }
  if (scheme == "mem") {
    out->storage = std::shared_ptr<Storage>(MemoryStorage::Global(),
                                            [](Storage*) {});
    out->root = NormalizePath(path);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown storage scheme '" +
                                 std::string(scheme) + "' in " +
                                 std::string(uri));
}

}  // namespace corrtrack::storage
