#ifndef CORRTRACK_STORAGE_STORAGE_H_
#define CORRTRACK_STORAGE_STORAGE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/status.h"

namespace corrtrack::storage {

/// A sequentially written object. The checkpoint writer's durability
/// discipline is Append* -> Sync -> Close; a file is not considered durable
/// until Sync returned OK (and a manifest only points at files that were).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Flushes the file's bytes to stable storage (posix: fsync).
  virtual Status Sync() = 0;
  /// Close without Sync makes no durability promise.
  virtual Status Close() = 0;
};

/// Pluggable storage backend — the run-ai-streamer-style multi-backend
/// surface, reduced to what a checkpoint needs: whole-object reads,
/// sequential writes, atomic rename (the commit primitive), and directory
/// listing (checkpoint discovery). Paths are '/'-separated and interpreted
/// within the backend (posix: absolute filesystem paths; memory: keys).
///
/// Thread-safety: concurrent calls on *distinct* paths are safe on every
/// backend (the chunk-parallel restore reads many files at once);
/// concurrent mutation of one path is the caller's bug.
class Storage {
 public:
  virtual ~Storage() = default;

  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;

  /// Reads the whole object into `*out` (replaced, not appended).
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// OK when the object exists, NotFound when it does not.
  virtual Status FileExists(const std::string& path) = 0;

  /// mkdir -p semantics; OK when the directory already exists.
  virtual Status CreateDirs(const std::string& path) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` — the manifest commit point: a
  /// reader sees either the old object or the new one, never a mix.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Immediate children (file and directory names, no paths) of `path`.
  virtual Status ListDirectory(const std::string& path,
                               std::vector<std::string>* names) = 0;

  /// rm -rf semantics; OK when `path` does not exist.
  virtual Status DeleteDirRecursive(const std::string& path) = 0;

  virtual const char* name() const = 0;
};

/// A backend plus the root path the URI addressed within it.
struct OpenedStorage {
  std::shared_ptr<Storage> storage;
  std::string root;
};

/// URI dispatch, the one place scheme strings are interpreted:
///
///   file:///var/ckpt      -> posix backend, root "/var/ckpt"
///   mem://test/run1       -> in-memory backend, root "/test/run1"
///
/// The mem:// backend is one process-global filesystem: it outlives the
/// pipeline that wrote to it, which is exactly what the kill-restore tests
/// need (destroy the runtime, the "disk" survives). Unknown schemes return
/// kInvalidArgument; a path with no scheme is treated as file://.
Status OpenStorage(std::string_view uri, OpenedStorage* out);

/// `base` + "/" + `name`, collapsing a duplicate separator.
std::string JoinPath(std::string_view base, std::string_view name);

/// The process-global in-memory backend behind mem:// (exposed for tests
/// that want to reset it between cases).
class MemoryStorage : public Storage {
 public:
  static MemoryStorage* Global();

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status FileExists(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status ListDirectory(const std::string& path,
                       std::vector<std::string>* names) override;
  Status DeleteDirRecursive(const std::string& path) override;
  const char* name() const override { return "memory"; }

  /// Drops every object and directory (test isolation).
  void Clear();

 private:
  friend class MemWritableFile;
  struct Impl;
  MemoryStorage();
  std::shared_ptr<Impl> impl_;
};

}  // namespace corrtrack::storage

#endif  // CORRTRACK_STORAGE_STORAGE_H_
