#ifndef CORRTRACK_STORAGE_STATUS_H_
#define CORRTRACK_STORAGE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace corrtrack::storage {

/// Error taxonomy of the storage layer. The split that matters operationally
/// is transient vs permanent: kUnavailable is the only code the checkpoint
/// retry policy (checkpoint.h) retries — everything else fails the operation
/// immediately (ENOSPC will not clear by waiting; a CRC mismatch never will).
enum class StatusCode {
  kOk = 0,
  kNotFound,       ///< Object/key does not exist.
  kCorruption,     ///< Checksum mismatch, truncated frame, bad magic.
  kNoSpace,        ///< ENOSPC-class failure; permanent until space frees.
  kUnavailable,    ///< Transient backend hiccup; safe to retry.
  kIOError,        ///< Other I/O failure (failed fsync, rename, close).
  kInvalidArgument,
  kFailedPrecondition,  ///< e.g. restoring under a different PipelineConfig.
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Retryable per the checkpoint RetryPolicy.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace corrtrack::storage

#endif  // CORRTRACK_STORAGE_STATUS_H_
