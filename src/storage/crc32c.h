#ifndef CORRTRACK_STORAGE_CRC32C_H_
#define CORRTRACK_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace corrtrack::storage {

/// Software CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78)
/// — the checksum every checkpoint chunk and the manifest tail carry. A
/// byte-at-a-time table implementation: checkpoint I/O is dominated by
/// serialisation and fsync, not the checksum, so portability wins over SSE4.2.
class Crc32c {
 public:
  /// Extends `crc` (0 for a fresh checksum) over `data`.
  static uint32_t Extend(uint32_t crc, const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    crc = ~crc;
    for (size_t i = 0; i < n; ++i) {
      crc = Table()[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    }
    return ~crc;
  }

  static uint32_t Of(std::string_view data) {
    return Extend(0, data.data(), data.size());
  }

 private:
  static const uint32_t* Table() {
    static const uint32_t* const kTable = [] {
      static uint32_t table[256];
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int j = 0; j < 8; ++j) {
          crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
        }
        table[i] = crc;
      }
      return table;
    }();
    return kTable;
  }
};

}  // namespace corrtrack::storage

#endif  // CORRTRACK_STORAGE_CRC32C_H_
