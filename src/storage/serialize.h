#ifndef CORRTRACK_STORAGE_SERIALIZE_H_
#define CORRTRACK_STORAGE_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace corrtrack::storage {

/// Little-endian binary encoder for checkpoint payloads. Fixed-width
/// integers only (the state being serialised is counter-table sized; varint
/// savings are not worth the decode branches), doubles as IEEE-754 bit
/// patterns — the encoding must round-trip *bit-identically*, coefficients
/// included, because the kill-restore differential tests compare doubles
/// with operator==.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBytes(std::string_view data) {
    PutU64(data.size());
    out_.append(data.data(), data.size());
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void PutFixed(const void* v, size_t n) {
    // Little-endian hosts only (x86-64/aarch64, the supported targets):
    // memcpy of the native representation IS the wire format.
    const char* p = static_cast<const char*>(v);
    out_.append(p, n);
  }

  std::string out_;
};

/// Bounds-checked decoder over a byte view. Every Get returns false on
/// truncation and leaves the output untouched; callers bubble the failure
/// up as StatusCode::kCorruption (the frame CRC has already passed by the
/// time payloads are decoded, so a short read here means an encoder bug or
/// version skew, not bit rot — still never silently loaded).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() < 1) return false;
    *v = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }

  bool GetU32(uint32_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetFixed(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetFixed(v, sizeof(*v)); }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetBytes(std::string_view* out) {
    uint64_t n;
    if (!GetU64(&n)) return false;
    if (data_.size() < n) return false;
    *out = data_.substr(0, static_cast<size_t>(n));
    data_.remove_prefix(static_cast<size_t>(n));
    return true;
  }

  bool GetString(std::string* out) {
    std::string_view view;
    if (!GetBytes(&view)) return false;
    out->assign(view.data(), view.size());
    return true;
  }

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  bool GetFixed(void* v, size_t n) {
    if (data_.size() < n) return false;
    std::memcpy(v, data_.data(), n);
    data_.remove_prefix(n);
    return true;
  }

  std::string_view data_;
};

}  // namespace corrtrack::storage

#endif  // CORRTRACK_STORAGE_SERIALIZE_H_
