#ifndef CORRTRACK_NET_TIMER_WHEEL_H_
#define CORRTRACK_NET_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace corrtrack::net {

/// Hashed timing wheel driving the per-connection timeouts (idle close,
/// write-stall close, deadline housekeeping) on the epoll loop. One wheel
/// per net thread, touched by that thread only — no locks, matching the
/// connection-ownership discipline.
///
/// Design: `num_slots` buckets of `tick_ns` granularity; a timer lands in
/// slot (deadline / tick) % slots. Advance() sweeps the slots between the
/// last sweep and `now`, expiring entries whose deadline has passed and
/// re-filing entries hashed into a swept slot for a *future* round.
/// Reschedules and cancels are O(1) lazy: the id -> deadline map is
/// authoritative and stale slot entries are dropped when their slot is
/// swept. All operations are amortised O(1) per timer per wheel
/// revolution; a wheel with nothing due costs one empty-slot scan per
/// elapsed tick.
///
/// Timeout handling wants coarse ticks (a connection closed a few ms after
/// its idle deadline is indistinguishable from one closed exactly on it),
/// so the default granularity trades precision for near-zero idle cost.
class TimerWheel {
 public:
  explicit TimerWheel(int64_t tick_ns = 10'000'000, size_t num_slots = 64)
      : tick_ns_(tick_ns > 0 ? tick_ns : 1), slots_(num_slots ? num_slots : 1) {}

  /// Schedules (or reschedules) the timer for `id` at `deadline_ns`. A
  /// deadline landing in an already-swept tick files into the next sweep's
  /// slot so it fires on the next Advance, not a revolution later.
  void Schedule(uint64_t id, int64_t deadline_ns) {
    deadlines_[id] = deadline_ns;
    int64_t tick = deadline_ns / tick_ns_;
    if (tick <= last_tick_) tick = last_tick_ + 1;
    slots_[static_cast<size_t>(tick) % slots_.size()].push_back(
        {id, deadline_ns});
  }

  void Cancel(uint64_t id) { deadlines_.erase(id); }

  bool empty() const { return deadlines_.empty(); }
  size_t size() const { return deadlines_.size(); }
  int64_t tick_ns() const { return tick_ns_; }

  /// Sweeps every slot between the previous Advance and `now_ns`, invoking
  /// `on_expire(id)` for each timer whose deadline has passed. Expired
  /// timers are removed before any callback runs, so a callback may freely
  /// Schedule (including rescheduling its own id) or Cancel.
  template <typename Fn>
  void Advance(int64_t now_ns, Fn&& on_expire) {
    if (deadlines_.empty()) {
      last_tick_ = now_ns / tick_ns_;
      return;
    }
    const int64_t now_tick = now_ns / tick_ns_;
    // A gap longer than one revolution visits every slot exactly once.
    int64_t from_tick = last_tick_ + 1;
    if (now_tick - from_tick >= static_cast<int64_t>(slots_.size())) {
      from_tick = now_tick - static_cast<int64_t>(slots_.size()) + 1;
    }
    std::vector<uint64_t> expired;
    std::vector<std::pair<uint64_t, int64_t>> refile;
    for (int64_t tick = from_tick; tick <= now_tick; ++tick) {
      auto& slot = slots_[static_cast<size_t>(tick) % slots_.size()];
      size_t keep = 0;
      for (size_t i = 0; i < slot.size(); ++i) {
        const auto [id, deadline] = slot[i];
        const auto it = deadlines_.find(id);
        if (it == deadlines_.end() || it->second != deadline) {
          continue;  // Cancelled or rescheduled: stale entry, drop it.
        }
        if (deadline <= now_ns) {
          deadlines_.erase(it);
          expired.push_back(id);
        } else if (deadline / tick_ns_ <= now_tick) {
          // Due later within an already-swept tick: re-file for the next
          // sweep rather than waiting out a full wheel revolution.
          refile.push_back(slot[i]);
        } else {
          slot[keep++] = slot[i];  // Future revolution of this slot.
        }
      }
      slot.resize(keep);
    }
    last_tick_ = now_tick;
    for (const auto& entry : refile) {
      slots_[static_cast<size_t>(now_tick + 1) % slots_.size()].push_back(
          entry);
    }
    for (const uint64_t id : expired) on_expire(id);
  }

 private:
  int64_t tick_ns_;
  int64_t last_tick_ = -1;
  std::vector<std::vector<std::pair<uint64_t, int64_t>>> slots_;
  std::unordered_map<uint64_t, int64_t> deadlines_;
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_TIMER_WHEEL_H_
