#ifndef CORRTRACK_NET_SIGNAL_DRAIN_H_
#define CORRTRACK_NET_SIGNAL_DRAIN_H_

namespace corrtrack::net {

/// Self-pipe bridge from SIGTERM/SIGINT to the serving loop: the handler
/// (async-signal-safe: one write) pokes a pipe; WaitForSignal blocks on
/// the read end. query_server --listen uses this to turn a SIGTERM into
/// Server::Drain instead of an abrupt exit, so every owed response is
/// delivered before the process goes away.
///
/// At most one instance may be live at a time (signal dispositions are
/// process-global); the constructor installs the handlers, the destructor
/// restores what was there before. Tests drive it with raise(SIGTERM).
class SignalDrainer {
 public:
  SignalDrainer();
  ~SignalDrainer();

  SignalDrainer(const SignalDrainer&) = delete;
  SignalDrainer& operator=(const SignalDrainer&) = delete;

  /// Blocks until SIGTERM or SIGINT arrives (or `timeout_ms` elapses when
  /// >= 0). Returns the signal number, or 0 on timeout.
  int WaitForSignal(int timeout_ms = -1);

  /// Non-blocking check: the signal that has arrived so far, 0 if none.
  int signaled() const;

 private:
  bool installed_ = false;
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_SIGNAL_DRAIN_H_
