#ifndef CORRTRACK_NET_SOCKET_OPS_H_
#define CORRTRACK_NET_SOCKET_OPS_H_

#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace corrtrack::net {

/// Socket I/O indirection: the server and client route every recv/send
/// through a SocketOps so the chaos tests can interpose deterministic
/// faults on the byte stream — the serving-path twin of
/// storage::FaultInjectingStorage. The default instance forwards straight
/// to the syscalls; production code never pays more than one virtual call
/// per (already syscall-priced) I/O operation.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// recv(fd, buf, len, 0) semantics: bytes read, 0 on EOF, -1 with errno.
  virtual ssize_t Recv(int fd, void* buf, size_t len);

  /// send(fd, buf, len, MSG_NOSIGNAL) semantics.
  virtual ssize_t Send(int fd, const void* buf, size_t len);

  /// The process-wide pass-through instance (used whenever a config leaves
  /// its socket_ops null).
  static SocketOps* Real();
};

/// The fault classes the injecting decorator can impose on one I/O call.
/// Two families, mirroring storage::FaultKind's split:
///  * transparent faults (kShortRead, kShortWrite, kEintrRead, kEintrWrite,
///    kEagainRead, kEagainWrite) — no byte is ever lost or duplicated, so a
///    CORRECT caller retries/continues and the answers stay bit-identical;
///    a caller with a broken partial-I/O loop corrupts or hangs, which is
///    exactly what the chaos matrix hunts.
///  * connection-fatal faults (kResetRead, kResetWrite, kPipeWrite) — the
///    operation reports a dead peer; the contract under test is
///    containment: one connection dies cleanly, everything else keeps
///    serving.
enum class SocketFaultKind : uint8_t {
  kNone = 0,
  kShortRead,    ///< Recv is truncated to 1 byte (rest stays buffered).
  kShortWrite,   ///< Send writes only the first byte (rest stays owed).
  kEintrRead,    ///< Recv fails EINTR without consuming anything.
  kEintrWrite,   ///< Send fails EINTR without writing anything.
  kEagainRead,   ///< Recv fails EAGAIN (spurious readiness).
  kEagainWrite,  ///< Send fails EAGAIN (full socket buffer).
  kResetRead,    ///< Recv fails ECONNRESET.
  kResetWrite,   ///< Send fails ECONNRESET.
  kPipeWrite,    ///< Send fails EPIPE (peer closed its read side).
};

inline constexpr int kNumSocketFaultKinds = 10;

inline const char* SocketFaultKindName(SocketFaultKind kind) {
  switch (kind) {
    case SocketFaultKind::kNone:
      return "none";
    case SocketFaultKind::kShortRead:
      return "short_read";
    case SocketFaultKind::kShortWrite:
      return "short_write";
    case SocketFaultKind::kEintrRead:
      return "eintr_read";
    case SocketFaultKind::kEintrWrite:
      return "eintr_write";
    case SocketFaultKind::kEagainRead:
      return "eagain_read";
    case SocketFaultKind::kEagainWrite:
      return "eagain_write";
    case SocketFaultKind::kResetRead:
      return "reset_read";
    case SocketFaultKind::kResetWrite:
      return "reset_write";
    case SocketFaultKind::kPipeWrite:
      return "pipe_write";
  }
  return "unknown";
}

/// One deterministic trigger: the `at_op`-th I/O operation (the decorator
/// numbers every Recv and Send across all fds) suffers `kind`, and — for
/// EAGAIN storms — the following `repeat - 1` operations do too.
struct SocketFaultRule {
  uint64_t at_op = 0;
  SocketFaultKind kind = SocketFaultKind::kNone;
  uint64_t repeat = 1;
};

/// Seeded fault schedule, the socket twin of storage::FaultPlan.
/// `probability` rolls an independent SplitMix64 per operation index —
/// deterministic for a given seed regardless of thread interleaving (the
/// op index, not wall time, drives the roll), so a failing chaos seed
/// replays exactly. A rolled kind that cannot apply to the operation at
/// hand (e.g. kShortWrite on a Recv) injects nothing.
struct SocketFaultPlan {
  uint64_t seed = 0;
  double probability = 0.0;
  std::vector<SocketFaultKind> kinds = {
      SocketFaultKind::kShortRead,  SocketFaultKind::kShortWrite,
      SocketFaultKind::kEintrRead,  SocketFaultKind::kEintrWrite,
      SocketFaultKind::kEagainRead, SocketFaultKind::kEagainWrite,
      SocketFaultKind::kResetRead,  SocketFaultKind::kResetWrite,
      SocketFaultKind::kPipeWrite};
  std::vector<SocketFaultRule> rules;

  bool enabled() const { return probability > 0.0 || !rules.empty(); }
};

/// Injection counters, by class.
struct SocketFaultStats {
  uint64_t total = 0;
  std::array<uint64_t, kNumSocketFaultKinds> by_kind{};

  uint64_t count(SocketFaultKind kind) const {
    return by_kind[static_cast<size_t>(kind)];
  }
};

/// Decorator imposing the seeded schedule on real socket I/O. Thread-safe:
/// the op counter is atomic and every draw depends only on the op index,
/// so concurrent connections share one plan without losing determinism of
/// the *sequence* of injected kinds (which op gets which fault can vary
/// with interleaving; the tests that need exact targeting use single
/// connections or rules).
class FaultInjectingSocketOps : public SocketOps {
 public:
  explicit FaultInjectingSocketOps(SocketFaultPlan plan);

  ssize_t Recv(int fd, void* buf, size_t len) override;
  ssize_t Send(int fd, const void* buf, size_t len) override;

  SocketFaultStats stats() const;
  uint64_t ops() const { return op_counter_.load(std::memory_order_relaxed); }

 private:
  SocketFaultKind Draw(uint64_t op, bool is_read);
  void Count(SocketFaultKind kind);

  SocketFaultPlan plan_;
  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> total_faults_{0};
  std::array<std::atomic<uint64_t>, kNumSocketFaultKinds> by_kind_{};
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_SOCKET_OPS_H_
