#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "net/timer_wheel.h"
#include "telemetry/clock.h"
#include "telemetry/log.h"

namespace corrtrack::net {

namespace {

/// epoll_data sentinels for the two per-thread non-connection fds.
/// Connection ids start at 16 (Server::next_conn_id_) so they never collide.
constexpr uint64_t kEventFdData = 0;
constexpr uint64_t kListenerData = 1;

void RecordNs(telemetry::LatencyHistogram* hist, int64_t span_ns) {
  if (hist != nullptr && span_ns > 0) {
    hist->Record(static_cast<uint64_t>(span_ns));
  }
}

void Bump(telemetry::Counter* counter, uint64_t n = 1) {
  if (counter != nullptr && n != 0) counter->Increment(n);
}

/// Timer-wheel ids multiplex two timers per connection.
constexpr uint64_t IdleTimerId(uint64_t conn_id) { return conn_id << 1; }
constexpr uint64_t StallTimerId(uint64_t conn_id) {
  return (conn_id << 1) | 1;
}

}  // namespace

/// Per-connection state machine, owned by exactly one net thread (no
/// locks). The in/out buffers use offset-consumption so pipelined floods
/// do not degenerate into O(n^2) front-erases.
struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;

  std::string in_buf;   // Raw bytes read; [0, in_off) already decoded.
  size_t in_off = 0;
  std::string out_buf;  // Encoded responses pending write; [0, out_off) sent.
  size_t out_off = 0;

  /// Error frame built at decode-error time, appended to out_buf only
  /// after any in-flight batch's responses (order preserved).
  std::string pending_error;

  bool executing = false;    // A batch is in the queue / on a reader thread.
  bool closing = false;      // Protocol error: close once out_buf drains.
  bool peer_closed = false;  // read() saw EOF; flush what we owe, then close.
  uint32_t interest = 0;     // Events currently registered with epoll.

  int64_t arrival_ns = 0;  // First byte of the batch being accumulated.

  /// Effective deadline budget from the connection's last kDeadline
  /// directive (already clamped); 0 falls back to default_deadline_ms.
  uint32_t deadline_ms = 0;

  // Timeout bookkeeping (only touched when the reapers are configured).
  int64_t last_activity_ns = 0;
  int64_t last_write_progress_ns = 0;
  bool write_stall_armed = false;
};

/// One decoded batch in flight: every complete frame drained from one
/// readiness event (or left over from the previous batch). Requests are
/// kept after execution so the net thread can stamp per-op e2e latency.
struct Server::RequestBatch {
  uint64_t conn_id = 0;
  int net_thread = 0;
  std::vector<Request> requests;
  std::string responses;  // Filled by the reader thread, frame per request.
  int64_t arrival_ns = 0;
  int64_t enqueue_ns = 0;
};

struct Server::NetThread {
  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::atomic<bool> stop{false};

  /// Cross-thread inboxes, drained on eventfd wake. `intake` carries
  /// accepted fds dispatched by thread 0; `completions` carries executed
  /// batches handed back by reader threads.
  std::mutex mutex;
  std::vector<int> intake;
  std::vector<std::unique_ptr<RequestBatch>> completions;

  /// Connections owned by this thread — touched by this thread only.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;

  /// Idle / write-stall timers for this thread's connections; swept after
  /// each epoll round when either reaper is configured.
  TimerWheel wheel;
};

/// Why a connection is being torn down — routes the close into the right
/// counter so operators can tell shed load from broken peers.
enum class Server::CloseReason {
  kNormal,      // Peer hangup, protocol error, fatal socket error, Stop.
  kIdle,        // Idle reaper fired.
  kWriteStall,  // Write-stall (slowloris) reaper fired.
  kSlowClient,  // Write buffer cap exceeded.
  kDrain,       // Graceful drain finished this connection's owed work.
};

struct Server::Instruments {
  telemetry::LatencyHistogram* stage_decode = nullptr;
  telemetry::LatencyHistogram* stage_queue = nullptr;
  telemetry::LatencyHistogram* stage_execute = nullptr;
  telemetry::LatencyHistogram* stage_flush = nullptr;
  telemetry::LatencyHistogram* request_ns[6] = {};  // Indexed by OpIndex.
  telemetry::Counter* requests_total[6] = {};
  telemetry::Counter* connections = nullptr;
  telemetry::Counter* disconnects = nullptr;
  telemetry::Counter* protocol_errors = nullptr;
  telemetry::Counter* batches = nullptr;
  telemetry::Counter* bytes_read = nullptr;
  telemetry::Counter* bytes_written = nullptr;
  telemetry::Counter* shed_requests = nullptr;
  telemetry::Counter* deadline_exceeded = nullptr;
  telemetry::Counter* timeout_closed_idle = nullptr;
  telemetry::Counter* timeout_closed_write_stall = nullptr;
  telemetry::Counter* accept_rejected = nullptr;
  telemetry::Counter* slow_client_closed = nullptr;
  telemetry::Counter* drain_closed = nullptr;
  telemetry::Gauge* open_connections = nullptr;
  std::atomic<int64_t> open_count{0};

  static int OpIndex(Opcode op) {
    switch (op) {
      case Opcode::kTopCorrelated:
        return 0;
      case Opcode::kLookup:
        return 1;
      case Opcode::kSnapshot:
        return 2;
      case Opcode::kPing:
        return 3;
      case Opcode::kStats:
        return 4;
      default:
        return 5;  // kDeadline.
    }
  }

  explicit Instruments(telemetry::MetricRegistry* registry) {
    if (registry == nullptr) return;
    stage_decode =
        registry->GetHistogram("corrtrack_net_stage_ns{stage=\"decode\"}");
    stage_queue =
        registry->GetHistogram("corrtrack_net_stage_ns{stage=\"queue\"}");
    stage_execute =
        registry->GetHistogram("corrtrack_net_stage_ns{stage=\"execute\"}");
    stage_flush =
        registry->GetHistogram("corrtrack_net_stage_ns{stage=\"flush\"}");
    static constexpr Opcode kOps[6] = {Opcode::kTopCorrelated, Opcode::kLookup,
                                       Opcode::kSnapshot, Opcode::kPing,
                                       Opcode::kStats, Opcode::kDeadline};
    for (const Opcode op : kOps) {
      const std::string label = RequestOpLabel(op);
      request_ns[OpIndex(op)] = registry->GetHistogram(
          "corrtrack_net_request_ns{op=\"" + label + "\"}");
      requests_total[OpIndex(op)] = registry->GetCounter(
          "corrtrack_net_requests_total{op=\"" + label + "\"}");
    }
    connections = registry->GetCounter("corrtrack_net_connections_total");
    disconnects = registry->GetCounter("corrtrack_net_disconnects_total");
    protocol_errors =
        registry->GetCounter("corrtrack_net_protocol_errors_total");
    batches = registry->GetCounter("corrtrack_net_batches_total");
    bytes_read = registry->GetCounter("corrtrack_net_bytes_read_total");
    bytes_written = registry->GetCounter("corrtrack_net_bytes_written_total");
    shed_requests = registry->GetCounter("corrtrack_net_shed_requests_total");
    deadline_exceeded =
        registry->GetCounter("corrtrack_net_deadline_exceeded_total");
    timeout_closed_idle =
        registry->GetCounter("corrtrack_net_timeout_closed_total{kind=\"idle\"}");
    timeout_closed_write_stall = registry->GetCounter(
        "corrtrack_net_timeout_closed_total{kind=\"write_stall\"}");
    accept_rejected =
        registry->GetCounter("corrtrack_net_accept_rejected_total");
    slow_client_closed =
        registry->GetCounter("corrtrack_net_slow_client_closed_total");
    drain_closed = registry->GetCounter("corrtrack_net_drain_closed_total");
    open_connections = registry->GetGauge("corrtrack_net_open_connections");
  }

  void ConnectionOpened() {
    Bump(connections);
    const int64_t open = open_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (open_connections != nullptr) {
      open_connections->Set(static_cast<double>(open));
    }
  }

  void ConnectionClosed() {
    Bump(disconnects);
    const int64_t open = open_count.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (open_connections != nullptr) {
      open_connections->Set(static_cast<double>(open));
    }
  }
};

Server::Server(const serve::CorrelationIndex* index,
               const ServerConfig& config)
    : index_(index), config_(config) {
  if (config_.num_net_threads < 1) config_.num_net_threads = 1;
  if (config_.num_reader_threads < 1) config_.num_reader_threads = 1;
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  sock_ = config_.socket_ops != nullptr ? config_.socket_ops
                                        : SocketOps::Real();
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "bad bind address '" + config_.bind_address + "'";
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 511) < 0) {
    if (error != nullptr) *error = std::string("bind/listen: ") +
                                   strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  instruments_ = std::make_unique<Instruments>(config_.registry);
  queue_ = std::make_unique<SharedQueue<std::unique_ptr<RequestBatch>>>(
      config_.queue_capacity);

  net_threads_.clear();
  for (int i = 0; i < config_.num_net_threads; ++i) {
    auto net = std::make_unique<NetThread>();
    net->index = i;
    net->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    net->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (net->epoll_fd < 0 || net->event_fd < 0) {
      if (error != nullptr) {
        *error = std::string("epoll/eventfd: ") + strerror(errno);
      }
      if (net->epoll_fd >= 0) ::close(net->epoll_fd);
      if (net->event_fd >= 0) ::close(net->event_fd);
      for (auto& prev : net_threads_) {
        ::close(prev->epoll_fd);
        ::close(prev->event_fd);
      }
      net_threads_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEventFdData;
    ::epoll_ctl(net->epoll_fd, EPOLL_CTL_ADD, net->event_fd, &ev);
    if (i == 0) {
      // The listener lives in thread 0's loop; accepted connections are
      // dealt round-robin to every net thread via the intake inboxes.
      ev.events = EPOLLIN;
      ev.data.u64 = kListenerData;
      ::epoll_ctl(net->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    net_threads_.push_back(std::move(net));
  }

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  started_ = true;
  for (int i = 0; i < config_.num_reader_threads; ++i) {
    reader_threads_.emplace_back([this] { ReaderThreadMain(); });
  }
  for (int i = 0; i < config_.num_net_threads; ++i) {
    net_threads_[i]->thread = std::thread([this, i] { NetThreadMain(i); });
  }
  CORRTRACK_LOG(kInfo, "net", "serving on %s:%u (%d net, %d reader threads)",
                config_.bind_address.c_str(), static_cast<unsigned>(port_),
                config_.num_net_threads, config_.num_reader_threads);
  return true;
}

void Server::Stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  // Order matters: readers drain and exit first so no completion is handed
  // to a net thread that has already been torn down; net threads then get
  // a final wake and exit their loops before any fd is closed.
  queue_->Close();
  for (std::thread& t : reader_threads_) t.join();
  reader_threads_.clear();
  for (auto& net : net_threads_) {
    net->stop.store(true, std::memory_order_release);
    uint64_t wake = 1;
    [[maybe_unused]] ssize_t n =
        ::write(net->event_fd, &wake, sizeof(wake));
  }
  for (auto& net : net_threads_) {
    net->thread.join();
    for (auto& [id, conn] : net->conns) ::close(conn->fd);
    for (const int fd : net->intake) ::close(fd);
    net->conns.clear();
    net->intake.clear();
    net->completions.clear();
    ::close(net->epoll_fd);
    ::close(net->event_fd);
  }
  net_threads_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  queue_.reset();
  started_ = false;
  draining_.store(false, std::memory_order_release);
}

bool Server::Drain(int64_t deadline_ms) {
  if (!started_) return true;
  bool expected = false;
  if (draining_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    CORRTRACK_LOG(kInfo, "net", "drain: stop accepting, finishing owed work");
    // Unblocks pending accepts with EINVAL; AcceptReady treats any
    // non-EINTR failure as "drained" and stops. fd ownership stays with
    // Stop so the teardown path is identical either way.
    ::shutdown(listen_fd_, SHUT_RDWR);
    for (auto& net : net_threads_) {
      uint64_t wake = 1;
      [[maybe_unused]] ssize_t n =
          ::write(net->event_fd, &wake, sizeof(wake));
    }
  }
  const int64_t give_up_ns =
      telemetry::MonotonicNanos() + deadline_ms * 1'000'000;
  bool drained = instruments_->open_count.load(std::memory_order_acquire) == 0;
  while (!drained && telemetry::MonotonicNanos() < give_up_ns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    drained = instruments_->open_count.load(std::memory_order_acquire) == 0;
  }
  if (!drained) {
    CORRTRACK_LOG(kWarn, "net",
                  "drain deadline (%lld ms) expired with connections open",
                  static_cast<long long>(deadline_ms));
  }
  Stop();
  return drained;
}

// --------------------------------------------------------- reader threads

void Server::ReaderThreadMain() {
  // One Reader per thread: per-shard snapshot caches make the steady-state
  // query path lock-free (see CorrelationIndex::Reader).
  serve::CorrelationIndex::Reader reader = index_->NewReader();
  std::vector<serve::ScoredSet> scratch;
  Instruments& ins = *instruments_;
  std::unique_ptr<RequestBatch> batch;
  while (queue_->Pop(&batch)) {
    const int64_t dequeued_ns = telemetry::MonotonicNanos();
    RecordNs(ins.stage_queue, dequeued_ns - batch->enqueue_ns);
    for (const Request& request : batch->requests) {
      // Deadline enforcement happens HERE, at dequeue: a request whose
      // budget burned away in the queue is answered without touching the
      // index — under overload that converts wasted work into fast
      // failures the client already knows how to interpret.
      if (request.deadline_ns != 0 && request.op != Opcode::kDeadline &&
          dequeued_ns > request.deadline_ns) {
        AppendErrorResponse(request.request_id, ErrorCode::kDeadlineExceeded,
                            "deadline expired before execution",
                            &batch->responses);
        Bump(ins.deadline_exceeded);
        Bump(ins.requests_total[Instruments::OpIndex(request.op)]);
        continue;
      }
      switch (request.op) {
        case Opcode::kTopCorrelated: {
          const uint32_t k = request.k < kMaxTopK ? request.k : kMaxTopK;
          reader.TopCorrelated(request.tag, k, &scratch);
          AppendScoredSetsResponse(Opcode::kScoredSets, request.request_id,
                                   scratch, &batch->responses);
          break;
        }
        case Opcode::kLookup:
          AppendLookupResponse(request.request_id, reader.Lookup(request.tags),
                               &batch->responses);
          break;
        case Opcode::kSnapshot: {
          reader.Snapshot(request.min_jaccard, &scratch);
          if (request.limit != 0 && scratch.size() > request.limit) {
            scratch.resize(request.limit);
          }
          AppendScoredSetsResponse(Opcode::kSnapshotSets, request.request_id,
                                   scratch, &batch->responses);
          break;
        }
        case Opcode::kPing:
          AppendPongResponse(request.request_id, &batch->responses);
          break;
        case Opcode::kDeadline:
          // The directive itself was applied at decode on the net thread
          // (budget_ms holds the post-clamp value); here we only owe the
          // in-order acknowledgement.
          AppendDeadlineAckResponse(request.request_id, request.budget_ms,
                                    &batch->responses);
          break;
        case Opcode::kStats:
        default: {
          StatsResult stats;
          stats.epoch = index_->epoch();
          stats.latest_period = index_->latest_period();
          stats.total_sets = reader.TotalSets();
          stats.num_shards = index_->num_shards();
          AppendStatsResponse(request.request_id, stats, &batch->responses);
          break;
        }
      }
      Bump(ins.requests_total[Instruments::OpIndex(request.op)]);
    }
    RecordNs(ins.stage_execute, telemetry::MonotonicNanos() - dequeued_ns);
    NetThread& net = *net_threads_[batch->net_thread];
    {
      std::lock_guard<std::mutex> lock(net.mutex);
      net.completions.push_back(std::move(batch));
    }
    uint64_t wake = 1;
    [[maybe_unused]] ssize_t n = ::write(net.event_fd, &wake, sizeof(wake));
  }
}

// ------------------------------------------------------------ net threads

void Server::NetThreadMain(int thread_index) {
  NetThread& net = *net_threads_[thread_index];
  const bool timers =
      config_.idle_timeout_ms > 0 || config_.write_stall_timeout_ms > 0;
  const int wait_ms =
      timers ? static_cast<int>(net.wheel.tick_ns() / 1'000'000) : -1;
  epoll_event events[64];
  while (!net.stop.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(net.epoll_fd, events, 64, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t data = events[i].data.u64;
      if (data == kEventFdData) {
        uint64_t drained;
        while (::read(net.event_fd, &drained, sizeof(drained)) > 0) {
        }
        AdoptIntake(net);
        ProcessCompletions(net);
      } else if (data == kListenerData) {
        AcceptReady(net);
      } else {
        auto it = net.conns.find(data);
        if (it == net.conns.end()) continue;  // Closed earlier this round.
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConnection(net, data, CloseReason::kNormal);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) {
          HandleReadable(net, *it->second);
        }
        it = net.conns.find(data);  // HandleReadable may have closed it.
        if (it != net.conns.end() && (events[i].events & EPOLLOUT) != 0) {
          FlushWrites(net, *it->second);
        }
      }
    }
    if (timers) AdvanceTimers(net);
    if (draining_.load(std::memory_order_acquire)) DrainSweep(net);
  }
}

void Server::AcceptReady(NetThread& net) {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained. Anything else: retry on next readiness.
    }
    if (draining_.load(std::memory_order_acquire) ||
        (config_.max_connections > 0 &&
         instruments_->open_count.load(std::memory_order_relaxed) >=
             static_cast<int64_t>(config_.max_connections))) {
      // Hard cap (or drain): reject at the door. The close delivers RST —
      // the peer learns immediately instead of queueing behind a server
      // that would never serve it.
      ::close(fd);
      Bump(instruments_->accept_rejected);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    instruments_->ConnectionOpened();
    const int target = next_net_thread_.fetch_add(
                           1, std::memory_order_relaxed) %
                       static_cast<int>(net_threads_.size());
    if (target == net.index) {
      std::lock_guard<std::mutex> lock(net.mutex);
      net.intake.push_back(fd);
    } else {
      NetThread& other = *net_threads_[target];
      {
        std::lock_guard<std::mutex> lock(other.mutex);
        other.intake.push_back(fd);
      }
      uint64_t wake = 1;
      [[maybe_unused]] ssize_t n =
          ::write(other.event_fd, &wake, sizeof(wake));
    }
  }
  AdoptIntake(net);  // Self-dispatched fds adopt without an eventfd round.
}

void Server::AdoptIntake(NetThread& net) {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(net.mutex);
    adopted.swap(net.intake);
  }
  for (const int fd : adopted) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->interest = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(net.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      instruments_->ConnectionClosed();
      continue;
    }
    if (config_.idle_timeout_ms > 0) {
      conn->last_activity_ns = telemetry::MonotonicNanos();
      net.wheel.Schedule(IdleTimerId(conn->id),
                         conn->last_activity_ns +
                             static_cast<int64_t>(config_.idle_timeout_ms) *
                                 1'000'000);
    }
    net.conns.emplace(conn->id, std::move(conn));
  }
}

void Server::ProcessCompletions(NetThread& net) {
  std::vector<std::unique_ptr<RequestBatch>> done;
  {
    std::lock_guard<std::mutex> lock(net.mutex);
    done.swap(net.completions);
  }
  Instruments& ins = *instruments_;
  for (auto& batch : done) {
    auto it = net.conns.find(batch->conn_id);
    // The connection may have died (EPOLLHUP, reset) while its batch was
    // executing; the orphaned responses are simply dropped with the batch.
    if (it == net.conns.end()) continue;
    Connection& conn = *it->second;
    const int64_t flush_start_ns = telemetry::MonotonicNanos();
    conn.last_activity_ns = flush_start_ns;
    conn.out_buf.append(batch->responses);
    conn.executing = false;
    if (!conn.pending_error.empty()) {
      // The decode error that followed this batch's frames: error frame
      // goes out after the answers it owes, then the connection closes.
      conn.out_buf.append(conn.pending_error);
      conn.pending_error.clear();
      conn.closing = true;
    }
    if (!FlushWrites(net, conn)) continue;
    const int64_t flushed_ns = telemetry::MonotonicNanos();
    RecordNs(ins.stage_flush, flushed_ns - flush_start_ns);
    for (const Request& request : batch->requests) {
      RecordNs(ins.request_ns[Instruments::OpIndex(request.op)],
               flushed_ns - batch->arrival_ns);
    }
    if (!conn.closing) {
      UpdateInterest(net, conn);
      DecodeAndSubmit(net, conn);  // Frames that arrived behind the batch.
    }
  }
}

void Server::HandleReadable(NetThread& net, Connection& conn) {
  if (conn.executing || conn.closing || conn.peer_closed ||
      draining_.load(std::memory_order_acquire)) {
    return;
  }
  if (conn.in_buf.empty()) conn.arrival_ns = telemetry::MonotonicNanos();
  char buf[65536];
  size_t total = 0;
  bool fatal = false;
  while (total < config_.max_read_per_event) {
    const ssize_t n = sock_->Recv(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in_buf.append(buf, static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      conn.peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    fatal = true;  // ECONNRESET and friends.
    break;
  }
  Bump(instruments_->bytes_read, total);
  if (total > 0 && config_.idle_timeout_ms > 0) {
    conn.last_activity_ns = telemetry::MonotonicNanos();
  }
  if (fatal) {
    CloseConnection(net, conn.id, CloseReason::kNormal);
    return;
  }
  DecodeAndSubmit(net, conn);
}

void Server::DecodeAndSubmit(NetThread& net, Connection& conn) {
  if (conn.executing || conn.closing) return;
  Instruments& ins = *instruments_;
  const size_t batch_cap = config_.max_requests_per_batch;
  bool decode_error = false;
  // Outer loop: one decoded GROUP per iteration. A group that the queue
  // admits becomes the connection's in-flight batch and we return; a group
  // that admission control refuses is shed wholesale (per-request
  // kOverloaded frames appended in order) and we decode the next group, so
  // complete frames never sit in in_buf with nothing scheduled to revisit
  // them (level-triggered epoll only re-reports SOCKET bytes).
  while (true) {
    std::vector<Request> requests;
    std::string_view view(conn.in_buf.data() + conn.in_off,
                          conn.in_buf.size() - conn.in_off);
    const int64_t decode_ns = telemetry::MonotonicNanos();
    while (!view.empty()) {
      if (batch_cap != 0 && requests.size() >= batch_cap) break;
      Request request;
      size_t consumed = 0;
      ErrorCode code = ErrorCode::kBadFrame;
      std::string message;
      const DecodeStatus status =
          DecodeRequest(view, &request, &consumed, &code, &message);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kError) {
        Bump(ins.protocol_errors);
        // request_id 0: the id of a frame that failed to decode is
        // untrusted.
        AppendErrorResponse(0, code, message, &conn.pending_error);
        decode_error = true;
        break;
      }
      if (request.op == Opcode::kDeadline) {
        // Connection-level directive, applied immediately so it governs
        // every following request — including the rest of this group.
        uint32_t effective = request.budget_ms;
        if (effective > config_.max_deadline_ms) {
          effective = config_.max_deadline_ms;
        }
        conn.deadline_ms = effective;
        request.budget_ms = effective;  // Echoed in the kDeadlineAck.
      } else {
        const uint32_t budget = conn.deadline_ms != 0
                                    ? conn.deadline_ms
                                    : config_.default_deadline_ms;
        if (budget != 0) {
          request.deadline_ns =
              decode_ns + static_cast<int64_t>(budget) * 1'000'000;
        }
      }
      requests.push_back(std::move(request));
      view.remove_prefix(consumed);
      conn.in_off += consumed;
    }
    if (conn.in_off > 0) {
      conn.in_buf.erase(0, conn.in_off);
      conn.in_off = 0;
    }
    if (requests.empty()) break;

    // Admission control. The watermark sheds early (before the queue is
    // outright full); TryPush failure is the no-watermark backstop. Either
    // way the net thread NEVER blocks on the queue.
    bool shed = config_.shed_occupancy_watermark > 0 &&
                queue_->size() >= config_.shed_occupancy_watermark;
    if (!shed) {
      RecordNs(ins.stage_decode, decode_ns - conn.arrival_ns);
      auto batch = std::make_unique<RequestBatch>();
      batch->conn_id = conn.id;
      batch->net_thread = net.index;
      batch->requests = std::move(requests);
      batch->arrival_ns = conn.arrival_ns;
      batch->enqueue_ns = decode_ns;
      conn.executing = true;
      if (queue_->TryPush(batch)) {
        Bump(ins.batches);
        UpdateInterest(net, conn);
        // A decode error behind valid frames waits in pending_error; the
        // completion path appends it after the answers and closes.
        return;
      }
      conn.executing = false;
      requests = std::move(batch->requests);  // Reclaim for the shed path.
      shed = true;
    }
    if (shed) {
      for (const Request& request : requests) {
        if (request.op == Opcode::kDeadline) {
          // The directive already took effect at decode; only the ack is
          // owed, and the net thread can write it without the index.
          AppendDeadlineAckResponse(request.request_id, request.budget_ms,
                                    &conn.out_buf);
        } else {
          AppendErrorResponse(request.request_id, ErrorCode::kOverloaded,
                              "shed: server overloaded", &conn.out_buf);
          Bump(ins.shed_requests);
        }
      }
    }
    if (decode_error) break;
  }

  if (decode_error) {
    conn.out_buf.append(conn.pending_error);
    conn.pending_error.clear();
    conn.closing = true;
  }
  if (!FlushWrites(net, conn)) return;
  UpdateInterest(net, conn);
}

bool Server::FlushWrites(NetThread& net, Connection& conn) {
  size_t written = 0;
  while (conn.out_off < conn.out_buf.size()) {
    const ssize_t n =
        sock_->Send(conn.fd, conn.out_buf.data() + conn.out_off,
                    conn.out_buf.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    Bump(instruments_->bytes_written, written);
    CloseConnection(net, conn.id, CloseReason::kNormal);
    return false;
  }
  Bump(instruments_->bytes_written, written);
  const bool stall_reaper = config_.write_stall_timeout_ms > 0;
  if (written > 0 && (stall_reaper || config_.idle_timeout_ms > 0)) {
    const int64_t now_ns = telemetry::MonotonicNanos();
    conn.last_write_progress_ns = now_ns;
    conn.last_activity_ns = now_ns;
  }
  if (conn.out_off >= conn.out_buf.size()) {
    conn.out_buf.clear();
    conn.out_off = 0;
    if (conn.closing ||
        ((conn.peer_closed ||
          draining_.load(std::memory_order_acquire)) &&
         !conn.executing && !HasPendingFrame(conn))) {
      const CloseReason reason = (conn.closing || conn.peer_closed)
                                     ? CloseReason::kNormal
                                     : CloseReason::kDrain;
      CloseConnection(net, conn.id, reason);
      return false;
    }
  } else {
    const size_t backlog = conn.out_buf.size() - conn.out_off;
    if (config_.max_write_buffer_bytes > 0 &&
        backlog > config_.max_write_buffer_bytes) {
      // The peer is reading slower than it queries (or not at all):
      // dropping it bounds our memory — the protocol has no way to
      // un-send half a frame anyway.
      CloseConnection(net, conn.id, CloseReason::kSlowClient);
      return false;
    }
    if (stall_reaper && !conn.write_stall_armed) {
      const int64_t now_ns = telemetry::MonotonicNanos();
      if (conn.last_write_progress_ns == 0) {
        conn.last_write_progress_ns = now_ns;
      }
      net.wheel.Schedule(
          StallTimerId(conn.id),
          now_ns +
              static_cast<int64_t>(config_.write_stall_timeout_ms) *
                  1'000'000);
      conn.write_stall_armed = true;
    }
  }
  UpdateInterest(net, conn);
  return true;
}

bool Server::HasPendingFrame(const Connection& conn) {
  const size_t avail = conn.in_buf.size() - conn.in_off;
  if (avail < kLengthPrefixBytes) return false;
  uint32_t length;
  std::memcpy(&length, conn.in_buf.data() + conn.in_off, sizeof(length));
  // A garbage length will fail decode with a connection-fatal error the
  // moment it is looked at; "pending" only needs to cover frames a drain
  // or EOF close would otherwise silently drop.
  if (length > kMaxFrameBytes) return true;
  return avail >= kLengthPrefixBytes + length;
}

void Server::UpdateInterest(NetThread& net, Connection& conn) {
  uint32_t want = 0;
  if (!conn.executing && !conn.closing && !conn.peer_closed &&
      !draining_.load(std::memory_order_acquire)) {
    want |= EPOLLIN;
  }
  if (conn.out_off < conn.out_buf.size()) want |= EPOLLOUT;
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  ::epoll_ctl(net.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = want;
}

void Server::AdvanceTimers(NetThread& net) {
  const int64_t now_ns = telemetry::MonotonicNanos();
  net.wheel.Advance(now_ns, [&](uint64_t timer_id) {
    const uint64_t conn_id = timer_id >> 1;
    auto it = net.conns.find(conn_id);
    if (it == net.conns.end()) return;
    Connection& conn = *it->second;
    if (timer_id == StallTimerId(conn_id)) {
      conn.write_stall_armed = false;
      if (conn.out_off >= conn.out_buf.size()) return;  // Drained meanwhile.
      const int64_t stall_deadline =
          conn.last_write_progress_ns +
          static_cast<int64_t>(config_.write_stall_timeout_ms) * 1'000'000;
      if (now_ns < stall_deadline) {
        net.wheel.Schedule(timer_id, stall_deadline);
        conn.write_stall_armed = true;
        return;
      }
      CloseConnection(net, conn_id, CloseReason::kWriteStall);
      return;
    }
    // Idle timer: lazy check against the last recorded activity — the hot
    // path only stamps a timestamp, never touches the wheel.
    const int64_t idle_deadline =
        conn.last_activity_ns +
        static_cast<int64_t>(config_.idle_timeout_ms) * 1'000'000;
    if (conn.executing || conn.out_off < conn.out_buf.size() ||
        now_ns < idle_deadline) {
      net.wheel.Schedule(timer_id, now_ns < idle_deadline
                                       ? idle_deadline
                                       : now_ns +
                                             static_cast<int64_t>(
                                                 config_.idle_timeout_ms) *
                                                 1'000'000);
      return;
    }
    CloseConnection(net, conn_id, CloseReason::kIdle);
  });
}

void Server::DrainSweep(NetThread& net) {
  // Snapshot ids first: DecodeAndSubmit / FlushWrites may erase from conns.
  std::vector<uint64_t> ids;
  ids.reserve(net.conns.size());
  for (const auto& [id, conn] : net.conns) ids.push_back(id);
  for (const uint64_t id : ids) {
    auto it = net.conns.find(id);
    if (it == net.conns.end()) continue;
    Connection& conn = *it->second;
    if (conn.executing) {
      UpdateInterest(net, conn);  // Park EPOLLIN; close comes at completion.
      continue;
    }
    // Decodes any frames received before the drain began (submitting or
    // shedding them), flushes, and closes once nothing is owed.
    DecodeAndSubmit(net, conn);
  }
}

void Server::CloseConnection(NetThread& net, uint64_t conn_id,
                             CloseReason reason) {
  auto it = net.conns.find(conn_id);
  if (it == net.conns.end()) return;
  switch (reason) {
    case CloseReason::kIdle:
      Bump(instruments_->timeout_closed_idle);
      break;
    case CloseReason::kWriteStall:
      Bump(instruments_->timeout_closed_write_stall);
      break;
    case CloseReason::kSlowClient:
      Bump(instruments_->slow_client_closed);
      break;
    case CloseReason::kDrain:
      Bump(instruments_->drain_closed);
      break;
    case CloseReason::kNormal:
      break;
  }
  net.wheel.Cancel(IdleTimerId(conn_id));
  net.wheel.Cancel(StallTimerId(conn_id));
  ::close(it->second->fd);
  net.conns.erase(it);
  instruments_->ConnectionClosed();
}

}  // namespace corrtrack::net
