#ifndef CORRTRACK_NET_SERVER_H_
#define CORRTRACK_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/shared_queue.h"
#include "net/socket_ops.h"
#include "serve/correlation_index.h"
#include "telemetry/registry.h"

namespace corrtrack::net {

struct ServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// Server::port() — the tests and benches bind this way).
  uint16_t port = 0;

  /// Dotted-quad address to bind. Loopback by default: the in-repo
  /// consumers are the tests, benches and the loadgen example; a real
  /// deployment flips this to "0.0.0.0" explicitly.
  std::string bind_address = "127.0.0.1";

  /// Network threads: each owns an epoll instance and a disjoint set of
  /// connections (sockets are never shared across threads, so connection
  /// state needs no locks — the bolt discipline, applied to sockets).
  int num_net_threads = 1;

  /// Index reader threads: each executes decoded batches against its own
  /// CorrelationIndex::Reader (per-thread snapshot caches, lock-free
  /// steady-state reads).
  int num_reader_threads = 2;

  /// Shared-queue capacity backstop (see SharedQueue). Sized above any
  /// realistic connection count so producers never block the event loop.
  size_t queue_capacity = 4096;

  /// Per-readiness-event read budget: bytes drained from one socket before
  /// the loop moves on (fairness under pipelined flooding; level-triggered
  /// epoll re-delivers the rest).
  size_t max_read_per_event = 256 * 1024;

  // ------------------------------------------------ overload protection

  /// Ceiling on the per-request deadline budget a client may propose with
  /// a kDeadline directive; proposals above it are clamped and the clamp
  /// is echoed back in the kDeadlineAck. 0 disables deadlines entirely.
  uint32_t max_deadline_ms = 60'000;

  /// Deadline budget applied to connections that never proposed one.
  /// 0 (the default) means such requests never expire.
  uint32_t default_deadline_ms = 0;

  /// Admission-control watermark: when the shared queue holds at least
  /// this many batches, newly decoded request groups are shed with
  /// per-request kOverloaded errors instead of being enqueued. 0 sheds
  /// only when the queue is outright full (TryPush refuses) — the event
  /// loop never blocks on the queue either way.
  size_t shed_occupancy_watermark = 0;

  /// Cap on requests bundled into one batch. Oversized pipelined floods
  /// are split: the first `max_requests_per_batch` frames travel now, the
  /// rest stay buffered and follow when the batch completes. 0 = no cap.
  size_t max_requests_per_batch = 0;

  /// Hard cap on concurrently open connections; accepts beyond it are
  /// closed immediately (counted corrtrack_net_accept_rejected_total).
  /// 0 = unlimited.
  size_t max_connections = 0;

  /// Per-connection bound on buffered-but-unsent response bytes. A client
  /// that stops reading while responses pile up is closed (counted
  /// corrtrack_net_slow_client_closed_total) instead of growing the
  /// buffer without bound.
  size_t max_write_buffer_bytes = 64 * 1024 * 1024;

  /// Close connections with no inbound traffic and nothing in flight for
  /// this long. 0 disables the idle reaper.
  uint32_t idle_timeout_ms = 0;

  /// Close connections whose pending responses make no write progress for
  /// this long (slowloris containment). 0 disables the write-stall reaper.
  uint32_t write_stall_timeout_ms = 0;

  /// Socket I/O indirection: null uses the real recv/send. Tests inject a
  /// FaultInjectingSocketOps here to storm the serving path with short
  /// reads, EINTR, EAGAIN, resets and EPIPE.
  SocketOps* socket_ops = nullptr;

  /// Optional metrics sink: when set, the server registers and records the
  /// corrtrack_net_* instruments (socket-to-socket spans, per-op request
  /// counters, byte/connection counters, overload counters).
  telemetry::MetricRegistry* registry = nullptr;
};

/// The network serving front end over a CorrelationIndex: a non-blocking
/// epoll event loop speaking the length-prefixed binary protocol of
/// net/protocol.h.
///
/// Threading model (responder / shared-queue split):
///
///   accept -> [net thread: epoll, decode, flush]  x N
///                 |  RequestBatch (all frames drained in one readiness event)
///                 v
///            SharedQueue (bounded MPMC)
///                 |
///                 v
///            [reader thread: CorrelationIndex::Reader, encode]  x M
///                 |  completed batch (responses coalesced into one buffer)
///                 v
///            owning net thread (eventfd wake) -> one write per batch
///
/// Batching is the headline perf lever: every frame already sitting in the
/// socket when it turns readable travels the queue as ONE batch, is
/// executed by one reader thread, and comes back as ONE coalesced response
/// buffer flushed with one write — so a client pipelining d requests pays
/// ~2 syscalls and 2 queue hops per d requests instead of per request.
///
/// Ordering and flow control: at most one batch per connection is in
/// flight (EPOLLIN is parked while it executes). Responses therefore come
/// back in request order per connection, and a connection can never flood
/// the queue faster than it drains.
///
/// Overload protection: admission is decided on the net thread at submit
/// time — a full (or watermarked) queue sheds the whole decoded group with
/// per-request kOverloaded frames rather than blocking the event loop, so
/// one saturated reader pool degrades into fast rejections, not stalled
/// epoll. Requests carry an absolute deadline stamped at decode (client
/// budget via the kDeadline directive, clamped to max_deadline_ms);
/// expired work is answered kDeadlineExceeded at reader dequeue without
/// touching the index. A per-net-thread timer wheel reaps idle and
/// write-stalled connections; a connection cap rejects at accept; a write
/// buffer cap closes clients that stop reading their responses.
///
/// Error containment: any decode error (bad length, unknown opcode,
/// malformed body) makes the connection answer one kError frame and close
/// — after any in-flight batch's responses flush. The index is never
/// touched by a malformed frame, and every buffer is reclaimed with the
/// connection (ASan-gated in CI). The per-request kOverloaded /
/// kDeadlineExceeded family, by contrast, leaves the connection open.
///
/// Lifetime: the index must outlive the server; Stop() (or the destructor)
/// joins every thread before returning.
class Server {
 public:
  Server(const serve::CorrelationIndex* index, const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the threads. False (with `*error` set) when
  /// the socket setup fails; the server is then inert and Stop is a no-op.
  bool Start(std::string* error);

  /// Stops accepting, drains in-flight batches, closes every connection
  /// and joins all threads. Idempotent.
  void Stop();

  /// Graceful shutdown: stops accepting, delivers every response owed to
  /// already-received requests, closes connections as they finish, then
  /// Stop()s. Connections still owing work when `deadline_ms` elapses are
  /// cut off by Stop. Returns true when everything drained in time.
  /// Idempotent with Stop; safe to call from a signal-handling thread.
  bool Drain(int64_t deadline_ms);

  /// The bound port (after a successful Start) — the ephemeral port when
  /// config.port was 0.
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  struct Connection;
  struct RequestBatch;
  struct NetThread;
  struct Instruments;
  enum class CloseReason;

  void NetThreadMain(int thread_index);
  void ReaderThreadMain();

  // Event-loop helpers (called on the owning net thread only).
  void AcceptReady(NetThread& net);
  void AdoptIntake(NetThread& net);
  void ProcessCompletions(NetThread& net);
  void HandleReadable(NetThread& net, Connection& conn);
  void DecodeAndSubmit(NetThread& net, Connection& conn);
  /// Returns false when the flush closed the connection (fatal write error,
  /// write-buffer overrun, or an orderly close-after-drain) — `conn` is
  /// dead then.
  bool FlushWrites(NetThread& net, Connection& conn);
  /// True when in_buf holds at least one complete (or provably bad) frame
  /// — work a drain or EOF close must not silently drop.
  static bool HasPendingFrame(const Connection& conn);
  void UpdateInterest(NetThread& net, Connection& conn);
  void CloseConnection(NetThread& net, uint64_t conn_id, CloseReason reason);
  void AdvanceTimers(NetThread& net);
  void DrainSweep(NetThread& net);

  const serve::CorrelationIndex* index_;
  ServerConfig config_;
  SocketOps* sock_ = nullptr;
  std::unique_ptr<Instruments> instruments_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<NetThread>> net_threads_;
  std::vector<std::thread> reader_threads_;
  std::unique_ptr<SharedQueue<std::unique_ptr<RequestBatch>>> queue_;
  std::atomic<uint64_t> next_conn_id_{16};  // Low ids are epoll sentinels.
  std::atomic<int> next_net_thread_{0};     // Round-robin accept dispatch.
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_SERVER_H_
