#ifndef CORRTRACK_NET_SERVER_H_
#define CORRTRACK_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/shared_queue.h"
#include "serve/correlation_index.h"
#include "telemetry/registry.h"

namespace corrtrack::net {

struct ServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// Server::port() — the tests and benches bind this way).
  uint16_t port = 0;

  /// Dotted-quad address to bind. Loopback by default: the in-repo
  /// consumers are the tests, benches and the loadgen example; a real
  /// deployment flips this to "0.0.0.0" explicitly.
  std::string bind_address = "127.0.0.1";

  /// Network threads: each owns an epoll instance and a disjoint set of
  /// connections (sockets are never shared across threads, so connection
  /// state needs no locks — the bolt discipline, applied to sockets).
  int num_net_threads = 1;

  /// Index reader threads: each executes decoded batches against its own
  /// CorrelationIndex::Reader (per-thread snapshot caches, lock-free
  /// steady-state reads).
  int num_reader_threads = 2;

  /// Shared-queue capacity backstop (see SharedQueue). Sized above any
  /// realistic connection count so producers never block the event loop.
  size_t queue_capacity = 4096;

  /// Per-readiness-event read budget: bytes drained from one socket before
  /// the loop moves on (fairness under pipelined flooding; level-triggered
  /// epoll re-delivers the rest).
  size_t max_read_per_event = 256 * 1024;

  /// Optional metrics sink: when set, the server registers and records the
  /// corrtrack_net_* instruments (socket-to-socket spans, per-op request
  /// counters, byte/connection counters).
  telemetry::MetricRegistry* registry = nullptr;
};

/// The network serving front end over a CorrelationIndex: a non-blocking
/// epoll event loop speaking the length-prefixed binary protocol of
/// net/protocol.h.
///
/// Threading model (responder / shared-queue split):
///
///   accept -> [net thread: epoll, decode, flush]  x N
///                 |  RequestBatch (all frames drained in one readiness event)
///                 v
///            SharedQueue (bounded MPMC)
///                 |
///                 v
///            [reader thread: CorrelationIndex::Reader, encode]  x M
///                 |  completed batch (responses coalesced into one buffer)
///                 v
///            owning net thread (eventfd wake) -> one write per batch
///
/// Batching is the headline perf lever: every frame already sitting in the
/// socket when it turns readable travels the queue as ONE batch, is
/// executed by one reader thread, and comes back as ONE coalesced response
/// buffer flushed with one write — so a client pipelining d requests pays
/// ~2 syscalls and 2 queue hops per d requests instead of per request.
///
/// Ordering and flow control: at most one batch per connection is in
/// flight (EPOLLIN is parked while it executes). Responses therefore come
/// back in request order per connection, and a connection can never flood
/// the queue faster than it drains.
///
/// Error containment: any decode error (bad length, unknown opcode,
/// malformed body) makes the connection answer one kError frame and close
/// — after any in-flight batch's responses flush. The index is never
/// touched by a malformed frame, and every buffer is reclaimed with the
/// connection (ASan-gated in CI).
///
/// Lifetime: the index must outlive the server; Stop() (or the destructor)
/// joins every thread before returning.
class Server {
 public:
  Server(const serve::CorrelationIndex* index, const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the threads. False (with `*error` set) when
  /// the socket setup fails; the server is then inert and Stop is a no-op.
  bool Start(std::string* error);

  /// Stops accepting, drains in-flight batches, closes every connection
  /// and joins all threads. Idempotent.
  void Stop();

  /// The bound port (after a successful Start) — the ephemeral port when
  /// config.port was 0.
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Connection;
  struct RequestBatch;
  struct NetThread;
  struct Instruments;

  void NetThreadMain(int thread_index);
  void ReaderThreadMain();

  // Event-loop helpers (called on the owning net thread only).
  void AcceptReady(NetThread& net);
  void AdoptIntake(NetThread& net);
  void ProcessCompletions(NetThread& net);
  void HandleReadable(NetThread& net, Connection& conn);
  void DecodeAndSubmit(NetThread& net, Connection& conn);
  /// Returns false when the flush closed the connection (fatal write error
  /// or an orderly close-after-drain) — `conn` is dead then.
  bool FlushWrites(NetThread& net, Connection& conn);
  void UpdateInterest(NetThread& net, Connection& conn);
  void CloseConnection(NetThread& net, uint64_t conn_id);

  const serve::CorrelationIndex* index_;
  ServerConfig config_;
  std::unique_ptr<Instruments> instruments_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<NetThread>> net_threads_;
  std::vector<std::thread> reader_threads_;
  std::unique_ptr<SharedQueue<std::unique_ptr<RequestBatch>>> queue_;
  std::atomic<uint64_t> next_conn_id_{16};  // Low ids are epoll sentinels.
  std::atomic<int> next_net_thread_{0};     // Round-robin accept dispatch.
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_SERVER_H_
