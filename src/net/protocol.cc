#include "net/protocol.h"

#include <cstring>

#include "storage/serialize.h"

namespace corrtrack::net {
namespace {

using storage::ByteReader;
using storage::ByteWriter;

/// Opens a frame in `*out`: writes a length placeholder plus the
/// opcode/request-id header and returns the placeholder's offset for
/// EndFrame to patch once the body is appended.
size_t BeginFrame(Opcode op, uint32_t request_id, std::string* out) {
  const size_t length_at = out->size();
  const char zero[kLengthPrefixBytes] = {};
  out->append(zero, kLengthPrefixBytes);
  out->push_back(static_cast<char>(op));
  uint32_t id = request_id;
  out->append(reinterpret_cast<const char*>(&id), sizeof(id));
  return length_at;
}

void EndFrame(size_t length_at, std::string* out) {
  const uint32_t length =
      static_cast<uint32_t>(out->size() - length_at - kLengthPrefixBytes);
  std::memcpy(out->data() + length_at, &length, sizeof(length));
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI64(int64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutDouble(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutTagSet(const TagSet& tags, std::string* out) {
  out->push_back(static_cast<char>(tags.size()));
  for (const TagId tag : tags) PutU32(tag, out);
}

/// Reads a u8-counted tag list and canonicalises it. Rejects counts above
/// kMaxWireTags before allocating anything.
bool GetTagSet(ByteReader* reader, TagSet* out) {
  uint8_t n = 0;
  if (!reader->GetU8(&n)) return false;
  if (static_cast<size_t>(n) > kMaxWireTags) return false;
  std::vector<TagId> tags(n);
  for (uint8_t i = 0; i < n; ++i) {
    if (!reader->GetU32(&tags[i])) return false;
  }
  *out = TagSet(tags);
  return true;
}

/// Shared frame-layer parse: validates the length prefix and splits off one
/// frame's opcode/request-id/body. Returns kNeedMore / kError per the
/// header contract.
DecodeStatus SplitFrame(std::string_view data, Opcode* op,
                        uint32_t* request_id, std::string_view* body,
                        size_t* consumed, std::string* error) {
  if (data.size() < kLengthPrefixBytes) return DecodeStatus::kNeedMore;
  uint32_t length;
  std::memcpy(&length, data.data(), sizeof(length));
  if (length < kFrameOverheadBytes - kLengthPrefixBytes ||
      length > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(length) + " out of bounds";
    }
    return DecodeStatus::kError;
  }
  if (data.size() < kLengthPrefixBytes + length) return DecodeStatus::kNeedMore;
  *op = static_cast<Opcode>(data[kLengthPrefixBytes]);
  std::memcpy(request_id, data.data() + kLengthPrefixBytes + 1,
              sizeof(*request_id));
  *body = data.substr(kFrameOverheadBytes,
                      length - (kFrameOverheadBytes - kLengthPrefixBytes));
  *consumed = kLengthPrefixBytes + length;
  return DecodeStatus::kOk;
}

}  // namespace

// ------------------------------------------------------------- encoders

void AppendTopCorrelatedRequest(uint32_t request_id, TagId tag, uint32_t k,
                                std::string* out) {
  const size_t at = BeginFrame(Opcode::kTopCorrelated, request_id, out);
  PutU32(tag, out);
  PutU32(k, out);
  EndFrame(at, out);
}

void AppendLookupRequest(uint32_t request_id, const TagSet& tags,
                         std::string* out) {
  const size_t at = BeginFrame(Opcode::kLookup, request_id, out);
  PutTagSet(tags, out);
  EndFrame(at, out);
}

void AppendSnapshotRequest(uint32_t request_id, double min_jaccard,
                           uint32_t limit, std::string* out) {
  const size_t at = BeginFrame(Opcode::kSnapshot, request_id, out);
  PutDouble(min_jaccard, out);
  PutU32(limit, out);
  EndFrame(at, out);
}

void AppendPingRequest(uint32_t request_id, std::string* out) {
  EndFrame(BeginFrame(Opcode::kPing, request_id, out), out);
}

void AppendStatsRequest(uint32_t request_id, std::string* out) {
  EndFrame(BeginFrame(Opcode::kStats, request_id, out), out);
}

void AppendDeadlineRequest(uint32_t request_id, uint32_t budget_ms,
                           std::string* out) {
  const size_t at = BeginFrame(Opcode::kDeadline, request_id, out);
  PutU32(budget_ms, out);
  EndFrame(at, out);
}

void AppendScoredSetsResponse(Opcode op, uint32_t request_id,
                              const std::vector<serve::ScoredSet>& sets,
                              std::string* out) {
  const size_t at = BeginFrame(op, request_id, out);
  PutU32(static_cast<uint32_t>(sets.size()), out);
  for (const serve::ScoredSet& scored : sets) {
    PutTagSet(scored.tags, out);
    PutDouble(scored.coefficient, out);
    PutI64(scored.period_end, out);
  }
  EndFrame(at, out);
}

void AppendLookupResponse(uint32_t request_id,
                          const std::optional<serve::LookupResult>& result,
                          std::string* out) {
  const size_t at = BeginFrame(Opcode::kLookupResult, request_id, out);
  out->push_back(result.has_value() ? 1 : 0);
  if (result.has_value()) {
    PutDouble(result->coefficient, out);
    PutU64(result->intersection_count, out);
    PutU64(result->union_count, out);
    PutI64(result->period_end, out);
    PutU64(result->epoch, out);
  }
  EndFrame(at, out);
}

void AppendPongResponse(uint32_t request_id, std::string* out) {
  EndFrame(BeginFrame(Opcode::kPong, request_id, out), out);
}

void AppendStatsResponse(uint32_t request_id, const StatsResult& stats,
                         std::string* out) {
  const size_t at = BeginFrame(Opcode::kStatsResult, request_id, out);
  PutU64(stats.epoch, out);
  PutI64(stats.latest_period, out);
  PutU64(stats.total_sets, out);
  PutU64(stats.num_shards, out);
  EndFrame(at, out);
}

void AppendDeadlineAckResponse(uint32_t request_id, uint32_t effective_ms,
                               std::string* out) {
  const size_t at = BeginFrame(Opcode::kDeadlineAck, request_id, out);
  PutU32(effective_ms, out);
  EndFrame(at, out);
}

void AppendErrorResponse(uint32_t request_id, ErrorCode code,
                         std::string_view message, std::string* out) {
  const size_t at = BeginFrame(Opcode::kError, request_id, out);
  PutU32(static_cast<uint32_t>(code), out);
  PutU64(message.size(), out);
  out->append(message.data(), message.size());
  EndFrame(at, out);
}

// ------------------------------------------------------------- decoders

DecodeStatus DecodeRequest(std::string_view data, Request* out,
                           size_t* consumed, ErrorCode* error_code,
                           std::string* error) {
  Opcode op;
  uint32_t request_id;
  std::string_view body;
  const DecodeStatus frame =
      SplitFrame(data, &op, &request_id, &body, consumed, error);
  if (frame != DecodeStatus::kOk) {
    if (frame == DecodeStatus::kError) *error_code = ErrorCode::kBadFrame;
    return frame;
  }
  Request request;
  request.op = op;
  request.request_id = request_id;
  ByteReader reader(body);
  bool ok = true;
  switch (op) {
    case Opcode::kTopCorrelated:
      ok = reader.GetU32(&request.tag) && reader.GetU32(&request.k);
      break;
    case Opcode::kLookup:
      ok = GetTagSet(&reader, &request.tags);
      break;
    case Opcode::kSnapshot: {
      ok = reader.GetDouble(&request.min_jaccard) &&
           reader.GetU32(&request.limit);
      break;
    }
    case Opcode::kPing:
    case Opcode::kStats:
      break;
    case Opcode::kDeadline:
      ok = reader.GetU32(&request.budget_ms);
      break;
    default:
      *error_code = ErrorCode::kBadOpcode;
      if (error != nullptr) {
        *error = "unknown request opcode " +
                 std::to_string(static_cast<unsigned>(op));
      }
      return DecodeStatus::kError;
  }
  // Strict bodies: trailing bytes mean version skew or garbage — refuse
  // rather than silently ignoring what a future field might mean.
  if (!ok || !reader.empty()) {
    *error_code = ErrorCode::kBadBody;
    if (error != nullptr) {
      *error = std::string("malformed ") + RequestOpLabel(op) + " body";
    }
    return DecodeStatus::kError;
  }
  *out = std::move(request);
  return DecodeStatus::kOk;
}

DecodeStatus DecodeResponse(std::string_view data, Response* out,
                            size_t* consumed, std::string* error) {
  Opcode op;
  uint32_t request_id;
  std::string_view body;
  const DecodeStatus frame =
      SplitFrame(data, &op, &request_id, &body, consumed, error);
  if (frame != DecodeStatus::kOk) return frame;
  Response response;
  response.op = op;
  response.request_id = request_id;
  ByteReader reader(body);
  bool ok = true;
  switch (op) {
    case Opcode::kScoredSets:
    case Opcode::kSnapshotSets: {
      uint32_t n = 0;
      ok = reader.GetU32(&n);
      // Each entry is at least ntags(1) + coef(8) + period(8) bytes: a
      // hostile count cannot reserve more than the frame itself carries.
      if (ok && static_cast<size_t>(n) * 17 > body.size()) ok = false;
      if (ok) response.scored.reserve(n);
      for (uint32_t i = 0; ok && i < n; ++i) {
        serve::ScoredSet scored;
        ok = GetTagSet(&reader, &scored.tags) &&
             reader.GetDouble(&scored.coefficient) &&
             reader.GetI64(&scored.period_end);
        if (ok) response.scored.push_back(std::move(scored));
      }
      break;
    }
    case Opcode::kLookupResult: {
      uint8_t found = 0;
      ok = reader.GetU8(&found);
      if (ok && found != 0) {
        serve::LookupResult result;
        ok = reader.GetDouble(&result.coefficient) &&
             reader.GetU64(&result.intersection_count) &&
             reader.GetU64(&result.union_count) &&
             reader.GetI64(&result.period_end) && reader.GetU64(&result.epoch);
        if (ok) response.lookup = result;
      }
      break;
    }
    case Opcode::kPong:
      break;
    case Opcode::kDeadlineAck:
      ok = reader.GetU32(&response.effective_deadline_ms);
      break;
    case Opcode::kStatsResult:
      ok = reader.GetU64(&response.stats.epoch) &&
           reader.GetI64(&response.stats.latest_period) &&
           reader.GetU64(&response.stats.total_sets) &&
           reader.GetU64(&response.stats.num_shards);
      break;
    case Opcode::kError: {
      uint32_t code = 0;
      ok = reader.GetU32(&code) && reader.GetString(&response.error_message);
      response.error_code = static_cast<ErrorCode>(code);
      break;
    }
    default:
      if (error != nullptr) {
        *error = "unknown response opcode " +
                 std::to_string(static_cast<unsigned>(op));
      }
      return DecodeStatus::kError;
  }
  if (!ok || !reader.empty()) {
    if (error != nullptr) *error = "malformed response body";
    return DecodeStatus::kError;
  }
  *out = std::move(response);
  return DecodeStatus::kOk;
}

const char* RequestOpLabel(Opcode op) {
  switch (op) {
    case Opcode::kTopCorrelated:
      return "top";
    case Opcode::kLookup:
      return "lookup";
    case Opcode::kSnapshot:
      return "scan";
    case Opcode::kPing:
      return "ping";
    case Opcode::kStats:
      return "stats";
    case Opcode::kDeadline:
      return "deadline";
    default:
      return "?";
  }
}

}  // namespace corrtrack::net
