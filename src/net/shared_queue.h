#ifndef CORRTRACK_NET_SHARED_QUEUE_H_
#define CORRTRACK_NET_SHARED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace corrtrack::net {

/// Bounded MPMC queue between the network threads (producers: one decoded
/// request batch per socket-readiness event) and the index reader threads
/// (consumers). Mutex + condvar rather than a lock-free ring on purpose:
/// the unit of transfer is a whole pipelined *batch*, so queue operations
/// are amortised over many requests and never show up next to the epoll
/// and index costs around them — and the simple form is trivially TSan-
/// clean, which is a CI gate on exactly this path.
///
/// Capacity is a backstop, not a working limit: the server holds at most
/// one batch in flight per connection (ordering + flow control), so
/// occupancy is bounded by the connection count and Push effectively never
/// blocks when capacity >= connections.
template <typename T>
class SharedQueue {
 public:
  explicit SharedQueue(size_t capacity) : capacity_(capacity) {}

  SharedQueue(const SharedQueue&) = delete;
  SharedQueue& operator=(const SharedQueue&) = delete;

  /// Blocks while full. Returns false (dropping `item`) once closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission: false when full or closed, leaving `item`
  /// intact so the caller can answer kOverloaded instead of stalling (the
  /// net threads' overload-shedding path — an event loop must never park
  /// on a queue it shares with other connections' traffic).
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false only when the queue is closed AND
  /// drained — consumers finish every batch that made it in before Close.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Wakes every waiter; subsequent Push fails, Pop drains then fails.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_SHARED_QUEUE_H_
