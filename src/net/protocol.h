#ifndef CORRTRACK_NET_PROTOCOL_H_
#define CORRTRACK_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/tagset.h"
#include "core/types.h"
#include "serve/correlation_index.h"

namespace corrtrack::net {

/// Wire format of the serving front end: a compact length-prefixed binary
/// framing of the CorrelationIndex query API, designed so a connection can
/// pipeline many requests and the server can coalesce many responses into
/// one write.
///
///   frame    := u32 length | u8 opcode | u32 request_id | body
///   length   := byte count of everything after the prefix
///               (opcode + request_id + body), 5 <= length <= kMaxFrameBytes
///
/// All integers are little-endian (the storage codec's convention — the
/// supported targets are LE); doubles travel as IEEE-754 bit patterns, so
/// every coefficient round-trips *bit-identically* and the loopback
/// differential tests can compare against direct Reader calls with
/// operator==. Responses echo the request_id and are returned in request
/// order per connection (the server executes one decoded batch at a time
/// per connection), so clients never reorder.
///
/// Decode errors (oversized length, unknown opcode, malformed body) are
/// connection-fatal by design: the server answers with one kError frame and
/// closes. A truncated frame is not an error — it is simply not decodable
/// yet (kNeedMore) until the rest of the bytes arrive; a mid-frame
/// disconnect just drops the partial tail.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Frame header bytes: u32 length prefix + u8 opcode + u32 request id.
inline constexpr size_t kLengthPrefixBytes = 4;
inline constexpr size_t kFrameOverheadBytes = kLengthPrefixBytes + 1 + 4;

/// Bound on tags per Lookup request / response entry. Wider than
/// kMaxTagsPerDocument so the protocol never silently truncates a set the
/// index could serve, but tight enough that a hostile frame cannot make the
/// decoder allocate unboundedly.
inline constexpr size_t kMaxWireTags = 32;

/// Server-side clamp on TopCorrelated's k: far above ServeConfig's
/// top_k_capacity bound (so clamping never changes an answer) while keeping
/// a hostile k=2^32-1 from pre-reserving gigabytes.
inline constexpr uint32_t kMaxTopK = 1u << 16;

enum class Opcode : uint8_t {
  // Requests.
  kTopCorrelated = 0x01,  ///< body: u32 tag | u32 k
  kLookup = 0x02,         ///< body: u8 ntags | ntags * u32 tag
  kSnapshot = 0x03,       ///< body: f64 min_jaccard | u32 limit (0 = all)
  kPing = 0x04,           ///< empty body
  kStats = 0x05,          ///< empty body
  kDeadline = 0x06,       ///< body: u32 budget_ms (0 clears). Directive: sets
                          ///< the per-request deadline budget for every
                          ///< FOLLOWING request on this connection. The
                          ///< server clamps to its configured maximum and
                          ///< acknowledges the effective value.
  // Responses (request opcode | 0x80).
  kScoredSets = 0x81,   ///< u32 n | n * (u8 ntags | tags | f64 coef | i64 period)
  kLookupResult = 0x82, ///< u8 found [| f64 coef | u64 inter | u64 union | i64 period | u64 epoch]
  kSnapshotSets = 0x83, ///< same body as kScoredSets (distinct op echoes the request kind)
  kPong = 0x84,         ///< empty body
  kStatsResult = 0x85,  ///< u64 epoch | i64 latest_period | u64 total_sets | u64 num_shards
  kDeadlineAck = 0x86,  ///< u32 effective_ms (after the server clamp)
  kError = 0xFF,        ///< u32 code | bytes message
};

/// kError codes. The first family (kBadFrame/kBadOpcode/kBadBody) is
/// connection-fatal: the server answers once and closes. The overload
/// family (kOverloaded/kDeadlineExceeded) is PER-REQUEST: the frame echoes
/// the request_id, counts as that request's response, and the connection
/// stays open — clients retry (with backoff) or give up per request.
enum class ErrorCode : uint32_t {
  kBadFrame = 1,     ///< length prefix out of bounds.
  kBadOpcode = 2,    ///< opcode is not a request the server knows.
  kBadBody = 3,      ///< body truncated, overlong, or field out of range.
  kOverloaded = 4,   ///< Admission control shed the request; retry later.
  kDeadlineExceeded = 5,  ///< Deadline budget expired before execution.
};

/// True for the per-request, connection-surviving error family.
inline bool IsPerRequestError(ErrorCode code) {
  return code == ErrorCode::kOverloaded || code == ErrorCode::kDeadlineExceeded;
}

/// One decoded request, any kind (the opcode says which fields are live).
struct Request {
  Opcode op = Opcode::kPing;
  uint32_t request_id = 0;
  // kTopCorrelated:
  TagId tag = 0;
  uint32_t k = 0;
  // kLookup:
  TagSet tags;
  // kSnapshot:
  double min_jaccard = 0.0;
  uint32_t limit = 0;
  // kDeadline: the client-proposed budget (0 clears).
  uint32_t budget_ms = 0;
  /// Server-side only (never on the wire): the absolute monotonic deadline
  /// stamped at decode from the connection's effective budget, 0 = none.
  /// Enforced at reader-thread dequeue — expired work is answered
  /// kDeadlineExceeded without touching the index.
  int64_t deadline_ns = 0;
};

struct StatsResult {
  uint64_t epoch = 0;
  Timestamp latest_period = 0;
  uint64_t total_sets = 0;
  uint64_t num_shards = 0;
};

/// One decoded response, any kind.
struct Response {
  Opcode op = Opcode::kError;
  uint32_t request_id = 0;
  // kScoredSets / kSnapshotSets:
  std::vector<serve::ScoredSet> scored;
  // kLookupResult:
  std::optional<serve::LookupResult> lookup;
  // kStatsResult:
  StatsResult stats;
  // kDeadlineAck:
  uint32_t effective_deadline_ms = 0;
  // kError:
  ErrorCode error_code = ErrorCode::kBadFrame;
  std::string error_message;
};

// ---------------------------------------------------------------------------
// Encoders: append one complete frame to `*out`. Encoding never fails —
// size limits are enforced at decode (and by the kMaxWireTags contract on
// the caller for Lookup).
// ---------------------------------------------------------------------------
void AppendTopCorrelatedRequest(uint32_t request_id, TagId tag, uint32_t k,
                                std::string* out);
void AppendLookupRequest(uint32_t request_id, const TagSet& tags,
                         std::string* out);
void AppendSnapshotRequest(uint32_t request_id, double min_jaccard,
                           uint32_t limit, std::string* out);
void AppendPingRequest(uint32_t request_id, std::string* out);
void AppendStatsRequest(uint32_t request_id, std::string* out);
void AppendDeadlineRequest(uint32_t request_id, uint32_t budget_ms,
                           std::string* out);

void AppendScoredSetsResponse(Opcode op, uint32_t request_id,
                              const std::vector<serve::ScoredSet>& sets,
                              std::string* out);
void AppendLookupResponse(uint32_t request_id,
                          const std::optional<serve::LookupResult>& result,
                          std::string* out);
void AppendPongResponse(uint32_t request_id, std::string* out);
void AppendStatsResponse(uint32_t request_id, const StatsResult& stats,
                         std::string* out);
void AppendDeadlineAckResponse(uint32_t request_id, uint32_t effective_ms,
                               std::string* out);
void AppendErrorResponse(uint32_t request_id, ErrorCode code,
                         std::string_view message, std::string* out);

// ---------------------------------------------------------------------------
// Decoders.
// ---------------------------------------------------------------------------
enum class DecodeStatus {
  kOk,        ///< One frame decoded; *consumed bytes were eaten.
  kNeedMore,  ///< The buffer holds a prefix of a valid frame — read more.
  kError,     ///< The connection is off the rails; *error says how.
};

/// Decodes one request frame from the front of `data`. On kOk fills `*out`
/// and sets `*consumed` to the frame's full size (prefix included). On
/// kError `*error` receives a diagnostic and `*error_code` the wire code to
/// send back. kNeedMore touches nothing.
DecodeStatus DecodeRequest(std::string_view data, Request* out,
                           size_t* consumed, ErrorCode* error_code,
                           std::string* error);

/// Decodes one response frame from the front of `data` (client side).
DecodeStatus DecodeResponse(std::string_view data, Response* out,
                            size_t* consumed, std::string* error);

/// Human-readable op label for telemetry series ("top", "lookup", "scan",
/// "ping", "stats", "deadline"); "?" for non-request opcodes.
const char* RequestOpLabel(Opcode op);

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_PROTOCOL_H_
