#include "net/signal_drain.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace corrtrack::net {

namespace {

// Process-global state shared with the (async-signal-safe) handler.
int g_pipe[2] = {-1, -1};
std::atomic<int> g_signo{0};
struct sigaction g_prev_term;
struct sigaction g_prev_int;

void OnSignal(int signo) {
  g_signo.store(signo, std::memory_order_release);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_pipe[1], &byte, 1);
}

}  // namespace

SignalDrainer::SignalDrainer() {
  if (g_pipe[0] >= 0) return;  // A live instance already owns the handlers.
  if (::pipe(g_pipe) != 0) {
    g_pipe[0] = g_pipe[1] = -1;
    return;
  }
  ::fcntl(g_pipe[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(g_pipe[1], F_SETFD, FD_CLOEXEC);
  // The write end must never block inside a handler.
  ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
  g_signo.store(0, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, &g_prev_term);
  ::sigaction(SIGINT, &sa, &g_prev_int);
  installed_ = true;
}

SignalDrainer::~SignalDrainer() {
  if (!installed_) return;
  ::sigaction(SIGTERM, &g_prev_term, nullptr);
  ::sigaction(SIGINT, &g_prev_int, nullptr);
  ::close(g_pipe[0]);
  ::close(g_pipe[1]);
  g_pipe[0] = g_pipe[1] = -1;
  g_signo.store(0, std::memory_order_release);
}

int SignalDrainer::WaitForSignal(int timeout_ms) {
  if (!installed_) return 0;
  const int already = g_signo.load(std::memory_order_acquire);
  if (already != 0) return already;
  pollfd pfd{g_pipe[0], POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) {
      // The signal itself interrupts poll; the self-pipe byte (or the
      // atomic) tells us whether it was ours.
      const int signo = g_signo.load(std::memory_order_acquire);
      if (signo != 0) return signo;
      continue;
    }
    if (ready <= 0) return g_signo.load(std::memory_order_acquire);
    char drain[16];
    [[maybe_unused]] ssize_t n = ::read(g_pipe[0], drain, sizeof(drain));
    return g_signo.load(std::memory_order_acquire);
  }
}

int SignalDrainer::signaled() const {
  return installed_ ? g_signo.load(std::memory_order_acquire) : 0;
}

}  // namespace corrtrack::net
