#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace corrtrack::net {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Fail(std::string("socket: ") + strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Fail("bad host '" + host + "' (dotted quad expected)");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Fail(std::string("connect: ") + strerror(errno));
  }
  // The unary path is one small frame per round-trip — exactly the shape
  // Nagle would hold back behind delayed ACKs.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  send_buf_.clear();
  recv_buf_.clear();
  pending_ = 0;
  last_error_.clear();
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_buf_.clear();
  recv_buf_.clear();
  pending_ = 0;
}

bool Client::Fail(const std::string& message) {
  last_error_ = message;
  Close();
  return false;
}

// ------------------------------------------------------------- pipelined

void Client::QueueTopCorrelated(TagId tag, uint32_t k) {
  AppendTopCorrelatedRequest(next_id_++, tag, k, &send_buf_);
  ++pending_;
}

void Client::QueueLookup(const TagSet& tags) {
  AppendLookupRequest(next_id_++, tags, &send_buf_);
  ++pending_;
}

void Client::QueueSnapshot(double min_jaccard, uint32_t limit) {
  AppendSnapshotRequest(next_id_++, min_jaccard, limit, &send_buf_);
  ++pending_;
}

void Client::QueuePing() {
  AppendPingRequest(next_id_++, &send_buf_);
  ++pending_;
}

void Client::QueueStats() {
  AppendStatsRequest(next_id_++, &send_buf_);
  ++pending_;
}

bool Client::Flush(std::vector<Response>* out) {
  if (out != nullptr) out->clear();
  if (fd_ < 0) return Fail("not connected");
  const size_t expect = pending_;
  pending_ = 0;
  std::string frames = std::move(send_buf_);
  send_buf_.clear();
  size_t off = 0;
  while (off < frames.size()) {
    const ssize_t n = ::send(fd_, frames.data() + off, frames.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Fail(std::string("send: ") + strerror(errno));
  }
  return ReadResponses(expect, out);
}

bool Client::ReadResponses(size_t count, std::vector<Response>* out) {
  size_t received = 0;
  char buf[65536];
  while (received < count) {
    // Decode everything already buffered before reading more.
    bool progressed = true;
    while (progressed && received < count) {
      Response response;
      size_t consumed = 0;
      std::string error;
      const DecodeStatus status =
          DecodeResponse(recv_buf_, &response, &consumed, &error);
      switch (status) {
        case DecodeStatus::kOk:
          recv_buf_.erase(0, consumed);
          if (response.op == Opcode::kError) {
            return Fail("server error: " + response.error_message);
          }
          ++received;
          if (out != nullptr) out->push_back(std::move(response));
          break;
        case DecodeStatus::kNeedMore:
          progressed = false;
          break;
        case DecodeStatus::kError:
          return Fail("protocol error: " + error);
      }
    }
    if (received >= count) break;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_buf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Fail("connection closed mid-response");
    return Fail(std::string("recv: ") + strerror(errno));
  }
  return true;
}

// ----------------------------------------------------------------- unary

bool Client::TopCorrelated(TagId tag, uint32_t k,
                           std::vector<serve::ScoredSet>* out) {
  QueueTopCorrelated(tag, k);
  std::vector<Response> responses;
  if (!Flush(&responses)) return false;
  if (responses.size() != 1 || responses[0].op != Opcode::kScoredSets) {
    return Fail("unexpected response to TopCorrelated");
  }
  *out = std::move(responses[0].scored);
  return true;
}

bool Client::Lookup(const TagSet& tags,
                    std::optional<serve::LookupResult>* out) {
  QueueLookup(tags);
  std::vector<Response> responses;
  if (!Flush(&responses)) return false;
  if (responses.size() != 1 || responses[0].op != Opcode::kLookupResult) {
    return Fail("unexpected response to Lookup");
  }
  *out = responses[0].lookup;
  return true;
}

bool Client::Snapshot(double min_jaccard, uint32_t limit,
                      std::vector<serve::ScoredSet>* out) {
  QueueSnapshot(min_jaccard, limit);
  std::vector<Response> responses;
  if (!Flush(&responses)) return false;
  if (responses.size() != 1 || responses[0].op != Opcode::kSnapshotSets) {
    return Fail("unexpected response to Snapshot");
  }
  *out = std::move(responses[0].scored);
  return true;
}

bool Client::Ping() {
  QueuePing();
  std::vector<Response> responses;
  if (!Flush(&responses)) return false;
  if (responses.size() != 1 || responses[0].op != Opcode::kPong) {
    return Fail("unexpected response to Ping");
  }
  return true;
}

bool Client::Stats(StatsResult* out) {
  QueueStats();
  std::vector<Response> responses;
  if (!Flush(&responses)) return false;
  if (responses.size() != 1 || responses[0].op != Opcode::kStatsResult) {
    return Fail("unexpected response to Stats");
  }
  *out = responses[0].stats;
  return true;
}

// ------------------------------------------------------------------- raw

bool Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Fail("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Fail(std::string("send: ") + strerror(errno));
  }
  return true;
}

std::string Client::ReadUntilClose(size_t max_bytes) {
  std::string bytes = std::move(recv_buf_);
  recv_buf_.clear();
  char buf[65536];
  while (fd_ >= 0 && bytes.size() < max_bytes) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error: the server hung up, as expected.
  }
  return bytes;
}

}  // namespace corrtrack::net
