#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "storage/checkpoint.h"  // RetryOp / RetryPolicy.

namespace corrtrack::net {

namespace {

/// SplitMix64 for the backoff jitter — seeded, so a retry schedule replays
/// exactly in tests.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void SetSocketTimeout(int fd, int optname, int64_t ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

}  // namespace

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Fail(std::string("socket: ") + strerror(errno), /*transient=*/true);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Fail("bad host '" + host + "' (dotted quad expected)");
  }
  // Non-blocking connect + poll: honours connect_timeout_ms and makes an
  // EINTR mid-handshake resumable (a blocking connect interrupted by a
  // signal cannot be safely re-issued).
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      return Fail(std::string("connect: ") + strerror(errno),
                  /*transient=*/true);
    }
    const int timeout_ms = config_.connect_timeout_ms > 0
                               ? static_cast<int>(config_.connect_timeout_ms)
                               : -1;
    pollfd pfd{fd_, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) {
      return Fail(ready == 0 ? "connect: timed out"
                             : std::string("connect poll: ") + strerror(errno),
                  /*transient=*/true);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      return Fail(std::string("connect: ") + strerror(so_error),
                  /*transient=*/true);
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  SetSocketTimeout(fd_, SO_RCVTIMEO, config_.io_timeout_ms);
  SetSocketTimeout(fd_, SO_SNDTIMEO, config_.io_timeout_ms);
  // The unary path is one small frame per round-trip — exactly the shape
  // Nagle would hold back behind delayed ACKs.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  send_buf_.clear();
  recv_buf_.clear();
  pending_ = 0;
  last_error_.clear();
  last_error_transient_ = false;
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_buf_.clear();
  recv_buf_.clear();
  pending_ = 0;
}

bool Client::Fail(const std::string& message, bool transient) {
  last_error_ = message;
  last_error_transient_ = transient;
  Close();
  return false;
}

void Client::JitterSleep(int64_t ms) {
  const uint64_t roll = Mix64(config_.retry_seed ^ ++jitter_draws_);
  const double factor =
      0.5 + static_cast<double>(roll >> 11) * (1.0 / 9007199254740992.0);
  const int64_t jittered = static_cast<int64_t>(static_cast<double>(ms) *
                                                factor);
  if (config_.sleeper) {
    config_.sleeper(jittered);
  } else if (jittered > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
  }
}

// ------------------------------------------------------------- pipelined

void Client::QueueTopCorrelated(TagId tag, uint32_t k) {
  AppendTopCorrelatedRequest(next_id_++, tag, k, &send_buf_);
  ++pending_;
}

void Client::QueueLookup(const TagSet& tags) {
  AppendLookupRequest(next_id_++, tags, &send_buf_);
  ++pending_;
}

void Client::QueueSnapshot(double min_jaccard, uint32_t limit) {
  AppendSnapshotRequest(next_id_++, min_jaccard, limit, &send_buf_);
  ++pending_;
}

void Client::QueuePing() {
  AppendPingRequest(next_id_++, &send_buf_);
  ++pending_;
}

void Client::QueueStats() {
  AppendStatsRequest(next_id_++, &send_buf_);
  ++pending_;
}

void Client::QueueDeadline(uint32_t budget_ms) {
  AppendDeadlineRequest(next_id_++, budget_ms, &send_buf_);
  ++pending_;
}

bool Client::Flush(std::vector<Response>* out) {
  if (out != nullptr) out->clear();
  if (fd_ < 0) return Fail("not connected");
  const size_t expect = pending_;
  pending_ = 0;
  std::string frames = std::move(send_buf_);
  send_buf_.clear();
  size_t off = 0;
  while (off < frames.size()) {
    const ssize_t n =
        sock()->Send(fd_, frames.data() + off, frames.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (config_.io_timeout_ms > 0) {
        // SO_SNDTIMEO expired. off > 0 means part of the batch is on the
        // wire — NOT safe to replay.
        return Fail("send: timed out", /*transient=*/off == 0);
      }
      continue;  // Spurious EAGAIN (fault injection); blocking send retries.
    }
    // n == 0 should be impossible for send(); treat it as a broken socket
    // rather than spinning.
    return Fail(n == 0 ? "send: returned 0"
                       : std::string("send: ") + strerror(errno),
                /*transient=*/off == 0);
  }
  return ReadResponses(expect, out);
}

bool Client::ReadResponses(size_t count, std::vector<Response>* out) {
  size_t received = 0;
  char buf[65536];
  while (received < count) {
    // Decode everything already buffered before reading more.
    bool progressed = true;
    while (progressed && received < count) {
      Response response;
      size_t consumed = 0;
      std::string error;
      const DecodeStatus status =
          DecodeResponse(recv_buf_, &response, &consumed, &error);
      switch (status) {
        case DecodeStatus::kOk:
          recv_buf_.erase(0, consumed);
          if (response.op == Opcode::kError &&
              !IsPerRequestError(response.error_code)) {
            // Connection-fatal family: the server closes after this frame.
            // The per-request family (kOverloaded/kDeadlineExceeded) flows
            // through as a normal response with the connection intact.
            return Fail("server error: " + response.error_message);
          }
          ++received;
          if (out != nullptr) out->push_back(std::move(response));
          break;
        case DecodeStatus::kNeedMore:
          progressed = false;
          break;
        case DecodeStatus::kError:
          return Fail("protocol error: " + error);
      }
    }
    if (received >= count) break;
    const ssize_t n = sock()->Recv(fd_, buf, sizeof(buf));
    if (n > 0) {
      recv_buf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (config_.io_timeout_ms > 0) return Fail("recv: timed out");
      continue;  // Spurious EAGAIN (fault injection); blocking recv retries.
    }
    if (n == 0) return Fail("connection closed mid-response");
    return Fail(std::string("recv: ") + strerror(errno));
  }
  return true;
}

// ----------------------------------------------------------------- unary

bool Client::RunUnary(const char* what,
                      const std::function<void()>& queue_one, Opcode expect,
                      Response* out) {
  storage::RetryPolicy policy;
  policy.max_attempts = config_.max_attempts > 1 ? config_.max_attempts : 1;
  policy.base_backoff_ms = config_.base_backoff_ms;
  policy.sleeper = [this](int ms) { JitterSleep(ms); };
  Response response;
  const storage::Status status =
      storage::RetryOp(policy, &retries_, [&]() -> storage::Status {
        if (fd_ < 0) {
          // A previous transient failure closed the socket; unary calls
          // are read-only queries, so reconnect-and-replay is safe.
          if (host_.empty() || !Connect(host_, port_)) {
            return storage::Status::Unavailable("reconnect: " + last_error_);
          }
        }
        queue_one();
        std::vector<Response> responses;
        if (!Flush(&responses)) {
          return last_error_transient_
                     ? storage::Status::Unavailable(last_error_)
                     : storage::Status::IOError(last_error_);
        }
        if (responses.size() != 1) {
          Close();
          return storage::Status::IOError(
              std::string("unexpected response count to ") + what);
        }
        if (responses[0].op == Opcode::kError) {
          // Shed by admission control: transient by definition — back off
          // and retry. A deadline miss is not retried (the same budget
          // would very likely expire again).
          const std::string message =
              std::string(what) + ": " + responses[0].error_message;
          return responses[0].error_code == ErrorCode::kOverloaded
                     ? storage::Status::Unavailable(message)
                     : storage::Status::IOError(message);
        }
        if (responses[0].op != expect) {
          Close();
          return storage::Status::IOError(
              std::string("unexpected response to ") + what);
        }
        response = std::move(responses[0]);
        return storage::Status::OK();
      });
  if (!status.ok()) {
    last_error_ = status.message();
    last_error_transient_ = status.IsTransient();
    return false;
  }
  if (out != nullptr) *out = std::move(response);
  return true;
}

bool Client::TopCorrelated(TagId tag, uint32_t k,
                           std::vector<serve::ScoredSet>* out) {
  Response response;
  if (!RunUnary("TopCorrelated",
                [&] { QueueTopCorrelated(tag, k); }, Opcode::kScoredSets,
                &response)) {
    return false;
  }
  *out = std::move(response.scored);
  return true;
}

bool Client::Lookup(const TagSet& tags,
                    std::optional<serve::LookupResult>* out) {
  Response response;
  if (!RunUnary("Lookup", [&] { QueueLookup(tags); }, Opcode::kLookupResult,
                &response)) {
    return false;
  }
  *out = response.lookup;
  return true;
}

bool Client::Snapshot(double min_jaccard, uint32_t limit,
                      std::vector<serve::ScoredSet>* out) {
  Response response;
  if (!RunUnary("Snapshot",
                [&] { QueueSnapshot(min_jaccard, limit); },
                Opcode::kSnapshotSets, &response)) {
    return false;
  }
  *out = std::move(response.scored);
  return true;
}

bool Client::Ping() {
  return RunUnary("Ping", [&] { QueuePing(); }, Opcode::kPong, nullptr);
}

bool Client::Stats(StatsResult* out) {
  Response response;
  if (!RunUnary("Stats", [&] { QueueStats(); }, Opcode::kStatsResult,
                &response)) {
    return false;
  }
  *out = response.stats;
  return true;
}

bool Client::SetDeadline(uint32_t budget_ms, uint32_t* effective_ms) {
  Response response;
  if (!RunUnary("SetDeadline", [&] { QueueDeadline(budget_ms); },
                Opcode::kDeadlineAck, &response)) {
    return false;
  }
  if (effective_ms != nullptr) {
    *effective_ms = response.effective_deadline_ms;
  }
  return true;
}

// ------------------------------------------------------------------- raw

bool Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Fail("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        sock()->Send(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        config_.io_timeout_ms <= 0) {
      continue;
    }
    return Fail(n == 0 ? "send: returned 0"
                       : std::string("send: ") + strerror(errno),
                /*transient=*/off == 0);
  }
  return true;
}

std::string Client::ReadUntilClose(size_t max_bytes) {
  std::string bytes = std::move(recv_buf_);
  recv_buf_.clear();
  char buf[65536];
  while (fd_ >= 0 && bytes.size() < max_bytes) {
    const ssize_t n = sock()->Recv(fd_, buf, sizeof(buf));
    if (n > 0) {
      bytes.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF, timeout or error: the server hung up, as expected.
  }
  return bytes;
}

}  // namespace corrtrack::net
