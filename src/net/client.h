#ifndef CORRTRACK_NET_CLIENT_H_
#define CORRTRACK_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "serve/correlation_index.h"

namespace corrtrack::net {

/// Blocking client for the binary serving protocol — the consumer side used
/// by the tests, the loopback differential suite and the load generator.
/// Not thread-safe: one Client per thread (the connection is the unit of
/// pipelining, like the server's per-connection batching).
///
/// Two usage shapes:
///  * Unary: TopCorrelated/Lookup/Snapshot/Ping/Stats — one request, one
///    syscall round-trip. This is the "batching off" arm of the A/B.
///  * Pipelined: Queue* any number of requests, then Flush() — ONE write
///    carrying every frame, then responses read back in request order.
///    This is the "batching on" arm: the server decodes the whole burst in
///    one readiness event, executes it as one batch and answers with one
///    coalesced write.
///
/// All methods return false on connection/protocol failure with
/// last_error() set; the connection is closed and must be Re-Connect()ed.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Unary calls.
  bool TopCorrelated(TagId tag, uint32_t k, std::vector<serve::ScoredSet>* out);
  bool Lookup(const TagSet& tags, std::optional<serve::LookupResult>* out);
  bool Snapshot(double min_jaccard, uint32_t limit,
                std::vector<serve::ScoredSet>* out);
  bool Ping();
  bool Stats(StatsResult* out);

  // Pipelined calls: stage frames, then Flush.
  void QueueTopCorrelated(TagId tag, uint32_t k);
  void QueueLookup(const TagSet& tags);
  void QueueSnapshot(double min_jaccard, uint32_t limit);
  void QueuePing();
  void QueueStats();
  size_t pending() const { return pending_; }

  /// Writes every staged frame in one burst and reads exactly one response
  /// per staged request, in order, into `*out` (cleared first). `out` may
  /// be nullptr to discard (loadgen warm-up). A kError response from the
  /// server fails the flush (the server closes after sending it).
  bool Flush(std::vector<Response>* out);

  /// Sends raw bytes as-is — the protocol-robustness tests use this to
  /// probe the server with malformed frames. Returns false on send failure.
  bool SendRaw(std::string_view bytes);

  /// Reads until the peer closes (or `max_bytes` arrive); returns the raw
  /// bytes. Used to observe error frames and connection teardown.
  std::string ReadUntilClose(size_t max_bytes = 1 << 20);

  const std::string& last_error() const { return last_error_; }

 private:
  bool Fail(const std::string& message);
  bool ReadResponses(size_t count, std::vector<Response>* out);

  int fd_ = -1;
  uint32_t next_id_ = 1;
  size_t pending_ = 0;
  std::string send_buf_;
  std::string recv_buf_;
  std::string last_error_;
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_CLIENT_H_
