#ifndef CORRTRACK_NET_CLIENT_H_
#define CORRTRACK_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket_ops.h"
#include "serve/correlation_index.h"

namespace corrtrack::net {

struct ClientConfig {
  /// Socket receive/send timeout (SO_RCVTIMEO/SO_SNDTIMEO). A blocking
  /// call that makes no progress for this long fails the operation with
  /// "timed out" instead of hanging the caller forever against a stalled
  /// or overloaded server. 0 = no timeout.
  int64_t io_timeout_ms = 0;

  /// Connect() budget, enforced with a non-blocking connect + poll.
  /// 0 = the kernel default (minutes of SYN retries).
  int64_t connect_timeout_ms = 0;

  /// Unary-call retry budget, executed through the storage RetryOp
  /// taxonomy: only TRANSIENT failures retry (connect refused/reset,
  /// send failures before any byte left, kOverloaded responses). A flush
  /// that failed after part of the batch was sent is never retried —
  /// the protocol cannot un-send half a frame. 1 = no retries.
  int max_attempts = 1;

  /// Backoff before retry n is base_backoff_ms * 2^(n-1), scaled by a
  /// seeded jitter factor in [0.5, 1.5) so a herd of retrying clients
  /// does not re-converge on the same instant.
  int base_backoff_ms = 5;
  uint64_t retry_seed = 0;

  /// Injectable sleep for the backoff — the retry tests run sleepless.
  /// Default: std::this_thread::sleep_for.
  std::function<void(int64_t ms)> sleeper;

  /// Socket I/O indirection: null uses the real recv/send. The chaos
  /// tests inject a FaultInjectingSocketOps to prove the client survives
  /// short writes, EINTR storms and mid-stream resets.
  SocketOps* socket_ops = nullptr;
};

/// Blocking client for the binary serving protocol — the consumer side used
/// by the tests, the loopback differential suite and the load generator.
/// Not thread-safe: one Client per thread (the connection is the unit of
/// pipelining, like the server's per-connection batching).
///
/// Two usage shapes:
///  * Unary: TopCorrelated/Lookup/Snapshot/Ping/Stats/SetDeadline — one
///    request, one syscall round-trip, retried per ClientConfig (every
///    unary op is a read-only query, so retry is safe). This is the
///    "batching off" arm of the A/B.
///  * Pipelined: Queue* any number of requests, then Flush() — ONE write
///    carrying every frame, then responses read back in request order.
///    This is the "batching on" arm: the server decodes the whole burst in
///    one readiness event, executes it as one batch and answers with one
///    coalesced write. Flush never retries on its own: a failed flush may
///    have half-sent the batch, and replaying it is the caller's decision
///    (check last_error_transient() — false means bytes may have landed).
///
/// Overload errors: a kOverloaded / kDeadlineExceeded frame is a normal
/// PER-REQUEST response — Flush returns it in `out` (op == kError,
/// IsPerRequestError(error_code)) with the connection intact. Any other
/// kError fails the call and closes, matching the server's
/// connection-fatal semantics.
///
/// All methods return false on connection/protocol failure with
/// last_error() set; the connection is closed and must be Re-Connect()ed.
class Client {
 public:
  Client() = default;
  explicit Client(const ClientConfig& config) : config_(config) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Unary calls.
  bool TopCorrelated(TagId tag, uint32_t k, std::vector<serve::ScoredSet>* out);
  bool Lookup(const TagSet& tags, std::optional<serve::LookupResult>* out);
  bool Snapshot(double min_jaccard, uint32_t limit,
                std::vector<serve::ScoredSet>* out);
  bool Ping();
  bool Stats(StatsResult* out);

  /// Proposes a per-request deadline budget for every following request on
  /// this connection (0 clears). The server clamps to its maximum;
  /// `*effective_ms` (optional) receives the acknowledged value.
  bool SetDeadline(uint32_t budget_ms, uint32_t* effective_ms = nullptr);

  // Pipelined calls: stage frames, then Flush.
  void QueueTopCorrelated(TagId tag, uint32_t k);
  void QueueLookup(const TagSet& tags);
  void QueueSnapshot(double min_jaccard, uint32_t limit);
  void QueuePing();
  void QueueStats();
  void QueueDeadline(uint32_t budget_ms);
  size_t pending() const { return pending_; }

  /// Writes every staged frame in one burst and reads exactly one response
  /// per staged request, in order, into `*out` (cleared first). `out` may
  /// be nullptr to discard (loadgen warm-up). Per-request error frames
  /// (kOverloaded/kDeadlineExceeded) come back as responses; any other
  /// kError fails the flush (the server closes after sending it).
  bool Flush(std::vector<Response>* out);

  /// Sends raw bytes as-is — the protocol-robustness tests use this to
  /// probe the server with malformed frames. Returns false on send failure.
  bool SendRaw(std::string_view bytes);

  /// Reads until the peer closes (or `max_bytes` arrive); returns the raw
  /// bytes. Used to observe error frames and connection teardown.
  std::string ReadUntilClose(size_t max_bytes = 1 << 20);

  const std::string& last_error() const { return last_error_; }

  /// Whether the last failure is safe to retry from scratch: the request
  /// provably never reached the server (or was answered kOverloaded).
  /// False after half-sent batches, protocol errors and mid-response
  /// failures.
  bool last_error_transient() const { return last_error_transient_; }

  /// Transient-failure retries performed by the unary calls (cumulative).
  uint64_t retries() const { return retries_; }

 private:
  bool Fail(const std::string& message, bool transient = false);
  bool ReadResponses(size_t count, std::vector<Response>* out);
  bool RunUnary(const char* what, const std::function<void()>& queue_one,
                Opcode expect, Response* out);
  void JitterSleep(int64_t ms);
  SocketOps* sock() const {
    return config_.socket_ops != nullptr ? config_.socket_ops
                                         : SocketOps::Real();
  }

  ClientConfig config_;
  int fd_ = -1;
  uint32_t next_id_ = 1;
  size_t pending_ = 0;
  std::string host_;   // Remembered for unary-retry reconnects.
  uint16_t port_ = 0;
  std::string send_buf_;
  std::string recv_buf_;
  std::string last_error_;
  bool last_error_transient_ = false;
  uint64_t retries_ = 0;
  uint64_t jitter_draws_ = 0;
};

}  // namespace corrtrack::net

#endif  // CORRTRACK_NET_CLIENT_H_
