#include "net/socket_ops.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

namespace corrtrack::net {

namespace {

/// SplitMix64 — the same per-index generator the storage fault plan uses:
/// hashing (seed, op index) gives a roll that is independent of thread
/// interleaving and replays exactly for a given seed.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool IsReadKind(SocketFaultKind kind) {
  switch (kind) {
    case SocketFaultKind::kShortRead:
    case SocketFaultKind::kEintrRead:
    case SocketFaultKind::kEagainRead:
    case SocketFaultKind::kResetRead:
      return true;
    default:
      return false;
  }
}

}  // namespace

ssize_t SocketOps::Recv(int fd, void* buf, size_t len) {
  return ::recv(fd, buf, len, 0);
}

ssize_t SocketOps::Send(int fd, const void* buf, size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

SocketOps* SocketOps::Real() {
  static SocketOps real;
  return &real;
}

FaultInjectingSocketOps::FaultInjectingSocketOps(SocketFaultPlan plan)
    : plan_(std::move(plan)) {}

SocketFaultKind FaultInjectingSocketOps::Draw(uint64_t op, bool is_read) {
  for (const SocketFaultRule& rule : plan_.rules) {
    if (rule.kind == SocketFaultKind::kNone) continue;
    if (op >= rule.at_op && op < rule.at_op + rule.repeat &&
        IsReadKind(rule.kind) == is_read) {
      return rule.kind;
    }
  }
  if (plan_.probability > 0.0 && !plan_.kinds.empty()) {
    const uint64_t roll = Mix64(plan_.seed ^ (op * 0x9E3779B97F4A7C15ull));
    const double unit =
        static_cast<double>(roll >> 11) * (1.0 / 9007199254740992.0);
    if (unit < plan_.probability) {
      const SocketFaultKind kind =
          plan_.kinds[Mix64(roll) % plan_.kinds.size()];
      if (IsReadKind(kind) == is_read) return kind;
    }
  }
  return SocketFaultKind::kNone;
}

void FaultInjectingSocketOps::Count(SocketFaultKind kind) {
  total_faults_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
}

ssize_t FaultInjectingSocketOps::Recv(int fd, void* buf, size_t len) {
  const uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed);
  switch (Draw(op, /*is_read=*/true)) {
    case SocketFaultKind::kShortRead:
      // Truncate the read to one byte; the rest stays in the kernel buffer,
      // so a correct caller simply takes more iterations to drain it.
      Count(SocketFaultKind::kShortRead);
      return ::recv(fd, buf, len < 1 ? len : 1, 0);
    case SocketFaultKind::kEintrRead:
      Count(SocketFaultKind::kEintrRead);
      errno = EINTR;
      return -1;
    case SocketFaultKind::kEagainRead:
      // Spurious readiness: nothing is consumed. Level-triggered epoll
      // re-reports the fd, blocking callers see a retry/timeout.
      Count(SocketFaultKind::kEagainRead);
      errno = EAGAIN;
      return -1;
    case SocketFaultKind::kResetRead:
      Count(SocketFaultKind::kResetRead);
      errno = ECONNRESET;
      return -1;
    default:
      return ::recv(fd, buf, len, 0);
  }
}

ssize_t FaultInjectingSocketOps::Send(int fd, const void* buf, size_t len) {
  const uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed);
  switch (Draw(op, /*is_read=*/false)) {
    case SocketFaultKind::kShortWrite:
      // Write only the first byte; the caller still owes the rest and must
      // continue from its own buffer — the classic partial-write trap.
      Count(SocketFaultKind::kShortWrite);
      return ::send(fd, buf, len < 1 ? len : 1, MSG_NOSIGNAL);
    case SocketFaultKind::kEintrWrite:
      Count(SocketFaultKind::kEintrWrite);
      errno = EINTR;
      return -1;
    case SocketFaultKind::kEagainWrite:
      Count(SocketFaultKind::kEagainWrite);
      errno = EAGAIN;
      return -1;
    case SocketFaultKind::kResetWrite:
      Count(SocketFaultKind::kResetWrite);
      errno = ECONNRESET;
      return -1;
    case SocketFaultKind::kPipeWrite:
      Count(SocketFaultKind::kPipeWrite);
      errno = EPIPE;
      return -1;
    default:
      return ::send(fd, buf, len, MSG_NOSIGNAL);
  }
}

SocketFaultStats FaultInjectingSocketOps::stats() const {
  SocketFaultStats stats;
  stats.total = total_faults_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumSocketFaultKinds; ++i) {
    stats.by_kind[static_cast<size_t>(i)] =
        by_kind_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace corrtrack::net
