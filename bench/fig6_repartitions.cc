// Reproduces Figure 6 (a-d): the number of repartitions, split by the
// violated quality bound — Communication, Load, or Both (§8.2.4) — for
// DS / SCI / SCC / SCL under the §8.1 parameter sweeps.
//
// Expected shape (paper): DS repartitions are driven by load imbalance and
// its communication creep from Single Additions; SCC and SCI repartition
// because of communication; SCL and SCI do not manage to reduce their
// repartition count at the larger threshold ("it is very difficult in
// general for these algorithms to maintain acceptable communication");
// SCL/SCI repartition roughly once every ~2750 processed documents.

#include <cstdio>
#include <string>

#include "exp/report.h"
#include "exp/sweep.h"

namespace {

using corrtrack::exp::ExperimentResult;

void PrintCauseTable(const char* caption, const char* fixed,
                     const std::vector<corrtrack::exp::SweepPoint>& points,
                     const corrtrack::exp::SweepResults& results) {
  std::printf("%s   [%s]\n", caption, fixed);
  std::printf("  %-8s", "");
  for (const auto& point : points) {
    std::printf("%-22s", point.column_label.c_str());
  }
  std::printf("\n  %-8s", "");
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("%-22s", "comm/both/load  total");
  }
  std::printf("\n");
  const auto algorithms = corrtrack::AllAlgorithms();
  for (size_t a = 0; a < algorithms.size(); ++a) {
    std::printf("  %-8s", corrtrack::AlgorithmName(algorithms[a]).data());
    for (const ExperimentResult& r : results[a]) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%llu/%llu/%llu  %llu",
                    static_cast<unsigned long long>(
                        r.repartitions_communication),
                    static_cast<unsigned long long>(r.repartitions_both),
                    static_cast<unsigned long long>(r.repartitions_load),
                    static_cast<unsigned long long>(r.TotalRepartitions()));
      std::printf("%-22s", cell);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace corrtrack::exp;
  const ExperimentConfig base = PaperBaseConfig();
  std::printf("=== Figure 6 — Number of repartitions by cause ===\n");
  std::printf("base: %s, %llu documents per run\n\n",
              DescribeBase(base).c_str(),
              static_cast<unsigned long long>(base.num_documents));

  {
    const auto points = ThresholdSweep();
    PrintCauseTable("(a) Varying threshold", "P=10 k=10 tps=1300", points,
                    RunSweep(points, base));
  }
  {
    const auto points = PartitionerSweep();
    PrintCauseTable("(b) Varying Partitioners", "k=10 thr=0.5 tps=1300",
                    points, RunSweep(points, base));
  }
  {
    const auto points = PartitionSweep();
    PrintCauseTable("(c) Varying partitions", "P=10 thr=0.5 tps=1300",
                    points, RunSweep(points, base));
  }
  {
    const auto points = RateSweep();
    PrintCauseTable("(d) Varying tweets rate", "P=10 k=10 thr=0.5", points,
                    RunSweep(points, base));
  }
  return 0;
}
