// Reproduces Figure 3 (a-d): average Communication — the mean number of
// messages the Disseminator sends to Calculators per received tagset
// (tagsets found in no Calculator are excluded), for DS / SCI / SCC / SCL
// under the §8.1 parameter sweeps.
//
// Expected shape (paper): DS lowest (≈1, zero redundancy by construction)
// and flat in k; SCC close behind; SCI clearly worse than SCC despite the
// similar algorithm; SCL worst; communication grows with the number of
// partitions k for all set-cover variants.

#include "bench/figure_common.h"

int main() {
  corrtrack::bench::RunFigureSweeps(
      "Figure 3 — Communication (avg messages per notified tagset)",
      {{"Communication (avg)",
        [](const corrtrack::exp::ExperimentResult& r) {
          return r.avg_communication;
        }}});
  return 0;
}
