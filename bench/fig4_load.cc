// Reproduces Figure 4 (a-d): Processing Load inequality — the Gini
// coefficient over the per-Calculator shares of sent notifications
// (§8.2.2), for DS / SCI / SCC / SCL under the §8.1 parameter sweeps.
//
// Expected shape (paper): SCL lowest (load is its optimisation target);
// imbalance grows with the number of partitions k; SCC is also affected by
// the number of Partitioners P (its careful tagset selection keeps
// communication low but cannot help load balance).

#include "bench/figure_common.h"

int main() {
  corrtrack::bench::RunFigureSweeps(
      "Figure 4 — Processing Load (Gini over per-calculator notifications)",
      {{"Load (Gini)",
        [](const corrtrack::exp::ExperimentResult& r) {
          return r.load_gini;
        }},
       {"Max load share",
        [](const corrtrack::exp::ExperimentResult& r) {
          return r.max_load_share;
        }}});
  return 0;
}
