// Reproduces Figure 8 (a-d): Communication over time for each algorithm at
// the base configuration (P=10, k=10, thr=0.5, tps=1300). One series per
// algorithm: the x axis is processed documents, the value is the average
// communication within each stride, and the final column marks
// repartitions completed inside the stride ('|' per repartition).
//
// Expected shape (paper): DS lowest with a saw-tooth — communication creeps
// up between repartitions as Single Additions replicate tags, and drops
// when fresh (disjoint) partitions install; SCC similar at a slightly
// higher level; SCL and SCI high with very frequent repartitions
// (approximately one every ~2750 processed documents).

#include <cstdio>
#include <future>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"

int main() {
  using namespace corrtrack;
  using namespace corrtrack::exp;

  ExperimentConfig base = PaperBaseConfig();
  base.series_stride = 10000;
  std::printf("=== Figure 8 — Communication over time ===\n");
  std::printf("base: %s, %llu documents, stride %llu docs\n\n",
              DescribeBase(base).c_str(),
              static_cast<unsigned long long>(base.num_documents),
              static_cast<unsigned long long>(base.series_stride));

  std::vector<std::future<ExperimentResult>> futures;
  for (AlgorithmKind kind : AllAlgorithms()) {
    ExperimentConfig config = base;
    config.pipeline.algorithm = kind;
    config.label = std::string(AlgorithmName(kind));
    futures.push_back(std::async(std::launch::async, [config] {
      return RunExperiment(config);
    }));
  }
  const auto algorithms = AllAlgorithms();
  for (size_t a = 0; a < algorithms.size(); ++a) {
    const ExperimentResult result = futures[a].get();
    std::vector<uint64_t> xs;
    std::vector<std::vector<double>> rows;
    std::vector<int> repartitions;
    for (const SeriesSample& sample : result.series) {
      xs.push_back(sample.docs_processed);
      rows.push_back({sample.avg_communication});
      repartitions.push_back(sample.repartitions);
    }
    std::printf("%s\n",
                RenderSeries("(" + std::string(1, char('a' + a)) + ") " +
                                 result.label + " Communication",
                             {"comm"}, xs, rows, &repartitions)
                    .c_str());
    std::printf(
        "  run avg=%.3f, repartitions=%llu (1 per %.0f docs), single "
        "additions=%llu\n\n",
        result.avg_communication,
        static_cast<unsigned long long>(result.TotalRepartitions()),
        result.TotalRepartitions() > 0
            ? static_cast<double>(result.documents) /
                  static_cast<double>(result.TotalRepartitions())
            : 0.0,
        static_cast<unsigned long long>(result.single_additions));
  }
  return 0;
}
