// Socket-path benchmarks of the serving front end (src/net): whole-stack
// request throughput and latency percentiles through a real loopback TCP
// connection — accept, epoll, frame decode, shared queue, reader-thread
// execution, coalesced flush — while a background writer keeps publishing
// periods, so the numbers include live RCU churn exactly like serve_bench's
// direct-reader measurements.
//
// The headline comparison is the batching A/B at 8 connections:
//   BM_NetPipelinedTopCorrelated/depth:1/threads:8   (one frame per write)
//   BM_NetPipelinedTopCorrelated/depth:16/threads:8  (16 frames per write)
// Per-connection batching collapses the per-request syscall + queue-hop
// cost, so depth:16 must clear >= 2x the depth:1 items/s (run_bench.sh
// attests the measured ratio into BENCH_micro.json).
//
// The overload A/B (BM_NetOverloadUncontended vs BM_NetOverloadSaturated)
// drives a deliberately under-provisioned server (1 reader, 2-deep queue,
// watermark shedding) to ~2x reader saturation and gates that admission
// control keeps ACCEPTED-request p99 within 3x of the uncontended p99 —
// overload must degrade into fast kOverloaded rejections, not unbounded
// queueing (run_bench.sh attests net_overload_p99_ratio and the shed
// count).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/jaccard.h"
#include "gen/tweet_generator.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/correlation_index.h"
#include "telemetry/clock.h"

namespace {

using namespace corrtrack;

constexpr Timestamp kPeriodSpan = 5 * kMillisPerMinute;

const std::vector<std::vector<JaccardEstimate>>& SharedPeriods() {
  static const auto periods = [] {
    constexpr int kNumPeriods = 4;
    constexpr int kDocsPerPeriod = 15000;
    gen::GeneratorConfig config;
    config.seed = 99;
    gen::TweetGenerator generator(config);
    std::vector<std::vector<JaccardEstimate>> out;
    out.reserve(kNumPeriods);
    for (int p = 0; p < kNumPeriods; ++p) {
      SubsetCounterTable counters;
      for (int d = 0; d < kDocsPerPeriod; ++d) {
        counters.Observe(generator.Next().tags);
      }
      out.push_back(counters.ReportAll(1));
    }
    return out;
  }();
  return periods;
}

std::vector<TagId> HotTags(
    const std::vector<std::vector<JaccardEstimate>>& periods) {
  std::vector<char> seen;
  std::vector<TagId> tags;
  for (const auto& period : periods) {
    for (const JaccardEstimate& estimate : period) {
      for (const TagId tag : estimate.tags) {
        if (seen.size() <= tag) seen.resize(tag + 1, 0);
        if (!seen[tag]) {
          seen[tag] = 1;
          tags.push_back(tag);
        }
      }
    }
  }
  return tags;
}

/// One server for the whole binary: a pre-loaded index behind the epoll
/// front end (2 net threads x 4 readers), plus a single-writer thread
/// republishing periods at a throttled cadence. Every benchmark thread is
/// its own TCP connection into this.
struct NetHarness {
  const std::vector<std::vector<JaccardEstimate>>& periods = SharedPeriods();
  serve::CorrelationIndex index;
  std::vector<TagId> hot_tags = HotTags(periods);
  net::Server* server = nullptr;
  std::atomic<bool> stop{false};
  Timestamp next_period = 0;
  std::thread writer;

  NetHarness() {
    for (const auto& period : periods) {
      index.ApplyPeriod(next_period += kPeriodSpan, period);
    }
    net::ServerConfig config;
    config.num_net_threads = 2;
    config.num_reader_threads = 4;
    server = new net::Server(&index, config);
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "net_bench: server start failed: %s\n",
                   error.c_str());
      std::abort();
    }
    writer = std::thread([this] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        index.ApplyPeriod(next_period += kPeriodSpan,
                          periods[i++ % periods.size()]);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }
  ~NetHarness() {
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    server->Stop();
    delete server;
  }
};

NetHarness& Net() {
  static NetHarness harness;
  return harness;
}

/// Sorted-vector percentile of per-thread latency samples; reported as
/// kAvgThreads counters so the aggregate line carries a representative
/// (cross-thread mean) percentile rather than a meaningless sum.
void ReportPercentiles(benchmark::State& state,
                       std::vector<uint64_t>* latencies_ns) {
  if (latencies_ns->empty()) return;
  std::sort(latencies_ns->begin(), latencies_ns->end());
  auto at = [&](double q) {
    const size_t rank = std::min(
        latencies_ns->size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_ns->size())));
    return static_cast<double>((*latencies_ns)[rank]) / 1000.0;  // us.
  };
  state.counters["p50_us"] =
      benchmark::Counter(at(0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_us"] =
      benchmark::Counter(at(0.99), benchmark::Counter::kAvgThreads);
}

/// Unary round-trips: one request, one response, one syscall pair per
/// request — the floor the batching A/B is measured against. Each
/// benchmark thread is one connection.
void BM_NetUnaryTopCorrelated(benchmark::State& state) {
  NetHarness& net = Net();
  net::Client client;
  if (!client.Connect("127.0.0.1", net.server->port())) {
    state.SkipWithError(client.last_error().c_str());
    return;
  }
  std::vector<serve::ScoredSet> results;
  std::vector<uint64_t> latencies_ns;
  const size_t n = net.hot_tags.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    const uint64_t start = telemetry::MonotonicNanos();
    if (!client.TopCorrelated(net.hot_tags[i % n], 8, &results)) {
      state.SkipWithError(client.last_error().c_str());
      return;
    }
    latencies_ns.push_back(telemetry::MonotonicNanos() - start);
    i += 13;
  }
  state.SetItemsProcessed(state.iterations());
  ReportPercentiles(state, &latencies_ns);
}
BENCHMARK(BM_NetUnaryTopCorrelated)->Threads(1)->Threads(8)->UseRealTime();

/// Pipelined round-trips at depth d: d frames staged into ONE write, the
/// server drains them as ONE batch and answers with ONE coalesced flush.
/// Items are requests, so items/s at depth:16 vs depth:1 is the batching
/// speedup; the percentiles are per-request (batch round-trip / depth
/// amortisation is what a pipelining client actually experiences).
void BM_NetPipelinedTopCorrelated(benchmark::State& state) {
  NetHarness& net = Net();
  const size_t depth = static_cast<size_t>(state.range(0));
  net::Client client;
  if (!client.Connect("127.0.0.1", net.server->port())) {
    state.SkipWithError(client.last_error().c_str());
    return;
  }
  std::vector<net::Response> responses;
  std::vector<uint64_t> latencies_ns;
  const size_t n = net.hot_tags.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    for (size_t d = 0; d < depth; ++d) {
      client.QueueTopCorrelated(net.hot_tags[i % n], 8);
      i += 13;
    }
    const uint64_t start = telemetry::MonotonicNanos();
    if (!client.Flush(&responses)) {
      state.SkipWithError(client.last_error().c_str());
      return;
    }
    latencies_ns.push_back((telemetry::MonotonicNanos() - start) /
                           static_cast<uint64_t>(depth));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(depth));
  ReportPercentiles(state, &latencies_ns);
}
BENCHMARK(BM_NetPipelinedTopCorrelated)
    ->ArgName("depth")
    ->Arg(1)
    ->Arg(16)
    ->Threads(8)
    ->UseRealTime();

/// Mixed pipelined workload — the shape a dashboard fan-out produces: top
/// queries, exact lookups and a stats poll in one batch.
void BM_NetPipelinedMixed(benchmark::State& state) {
  NetHarness& net = Net();
  net::Client client;
  if (!client.Connect("127.0.0.1", net.server->port())) {
    state.SkipWithError(client.last_error().c_str());
    return;
  }
  std::vector<net::Response> responses;
  const size_t n = net.hot_tags.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    for (int d = 0; d < 6; ++d) {
      client.QueueTopCorrelated(net.hot_tags[i % n], 8);
      i += 13;
    }
    client.QueueLookup(TagSet({net.hot_tags[i % n], net.hot_tags[(i + 13) % n]}));
    client.QueueStats();
    if (!client.Flush(&responses)) {
      state.SkipWithError(client.last_error().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_NetPipelinedMixed)->Threads(4)->UseRealTime();

/// Deliberately under-provisioned server for the overload A/B: one net
/// thread, ONE reader, a tiny shared queue with watermark shedding. The
/// flood arms drive it well past reader saturation; admission control must
/// keep accepted-request latency bounded (queue depth x batch cost) by
/// answering the excess kOverloaded instead of queueing it.
struct OverloadHarness {
  const std::vector<std::vector<JaccardEstimate>>& periods = SharedPeriods();
  serve::CorrelationIndex index;
  std::vector<TagId> hot_tags = HotTags(periods);
  net::Server* server = nullptr;
  Timestamp next_period = 0;

  OverloadHarness() {
    for (const auto& period : periods) {
      index.ApplyPeriod(next_period += kPeriodSpan, period);
    }
    net::ServerConfig config;
    config.num_net_threads = 1;
    config.num_reader_threads = 1;
    // The tighter the admission envelope, the tighter the accepted-wait
    // bound: at most (watermark + executing) batches sit ahead of any
    // accepted request, which is what keeps the saturated p99 within the
    // 3x gate.
    config.queue_capacity = 2;
    config.shed_occupancy_watermark = 1;
    server = new net::Server(&index, config);
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "net_bench: overload server start failed: %s\n",
                   error.c_str());
      std::abort();
    }
  }
  ~OverloadHarness() {
    server->Stop();
    delete server;
  }
};

OverloadHarness& Overload() {
  static OverloadHarness harness;
  return harness;
}

/// Baseline arm: accepted-request round-trip p99 on the under-provisioned
/// server with NO competing load. Registered before the saturated arm so
/// it runs while the server is quiet.
void BM_NetOverloadUncontended(benchmark::State& state) {
  OverloadHarness& net = Overload();
  net::Client client;
  if (!client.Connect("127.0.0.1", net.server->port())) {
    state.SkipWithError(client.last_error().c_str());
    return;
  }
  std::vector<serve::ScoredSet> results;
  std::vector<uint64_t> latencies_ns;
  const size_t n = net.hot_tags.size();
  size_t i = 1;
  for (auto _ : state) {
    const uint64_t start = telemetry::MonotonicNanos();
    if (!client.TopCorrelated(net.hot_tags[i % n], 8, &results)) {
      state.SkipWithError(client.last_error().c_str());
      return;
    }
    latencies_ns.push_back(telemetry::MonotonicNanos() - start);
    i += 13;
  }
  state.SetItemsProcessed(state.iterations());
  ReportPercentiles(state, &latencies_ns);
}
BENCHMARK(BM_NetOverloadUncontended)->Threads(1)->UseRealTime();

/// Saturated arm: flooding connections each alternating a depth-8 burst
/// with one timed unary probe, re-issued until accepted — roughly 2x what
/// the single reader clears (thread count kept low so single-core CI
/// hosts measure queueing, not scheduler contention). Sheds must engage (counter `shed`, attested
/// > 0) and the p99 over ACCEPTED probes must stay within 3x of the
/// uncontended arm: overload degrades into fast rejections, not queueing
/// collapse.
void BM_NetOverloadSaturated(benchmark::State& state) {
  OverloadHarness& net = Overload();
  net::Client flood, probe;
  if (!flood.Connect("127.0.0.1", net.server->port()) ||
      !probe.Connect("127.0.0.1", net.server->port())) {
    state.SkipWithError("connect failed");
    return;
  }
  std::vector<net::Response> responses;
  std::vector<serve::ScoredSet> results;
  std::vector<uint64_t> latencies_ns;
  double accepted = 0, shed = 0;
  const size_t n = net.hot_tags.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    for (int d = 0; d < 8; ++d) {
      flood.QueueTopCorrelated(net.hot_tags[i % n], 8);
      i += 13;
    }
    if (!flood.Flush(&responses)) {
      state.SkipWithError(flood.last_error().c_str());
      return;
    }
    for (const net::Response& response : responses) {
      if (response.op == net::Opcode::kError) {
        ++shed;
      } else {
        ++accepted;
      }
    }
    // The timed probe: retry until one gets PAST admission control; only
    // the accepted attempt's round trip lands in the histogram.
    for (int attempt = 0;; ++attempt) {
      const uint64_t start = telemetry::MonotonicNanos();
      if (probe.TopCorrelated(net.hot_tags[i % n], 8, &results)) {
        latencies_ns.push_back(telemetry::MonotonicNanos() - start);
        ++accepted;
        break;
      }
      if (!probe.last_error_transient() || attempt > 10'000) {
        state.SkipWithError(probe.last_error().c_str());
        return;
      }
      ++shed;
    }
    i += 13;
  }
  state.SetItemsProcessed(static_cast<int64_t>(accepted));
  state.counters["accepted"] = benchmark::Counter(accepted);
  state.counters["shed"] = benchmark::Counter(shed);
  ReportPercentiles(state, &latencies_ns);
}
BENCHMARK(BM_NetOverloadSaturated)->Threads(2)->UseRealTime();

}  // namespace

CORRTRACK_BENCHMARK_MAIN();
