// Reproduces Figure 7 (a-c): tagset connectivity statistics over
// non-overlapping windows of 2 / 5 / 10 / 20 minutes (§8.2.6) —
//   (a) the maximum percentage of tags contained in a single connected
//       component per round,
//   (b) the maximum percentage of documents related to a single connected
//       component per round,
//   (c) the number of connected tagsets (disjoint sets) per round —
// each as the average and maximum over the rounds, plus the §5.1
// Erdős–Rényi view of the same windows.
//
// Expected shape (paper): all three grow with the window size; even at
// 20 minutes the largest component stays bounded (tens of percent), which
// is what keeps the DS algorithm viable.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cooccurrence.h"
#include "gen/tweet_generator.h"
#include "theory/er_model.h"
#include "theory/zipf_math.h"

int main() {
  using namespace corrtrack;

  const Timestamp total_span = 80 * kMillisPerMinute;
  std::printf(
      "=== Figure 7 — Tagset connectivity and load (windows over %lld "
      "minutes of stream) ===\n\n",
      static_cast<long long>(total_span / kMillisPerMinute));
  std::printf("%-8s %-8s %-20s %-20s %-20s\n", "window", "rounds",
              "max #tags (%)", "max load (%)", "#disjoint sets");
  std::printf("%-8s %-8s %-20s %-20s %-20s\n", "(min)", "",
              "avg      max", "avg      max", "avg      max");

  for (const int minutes : {2, 5, 10, 20}) {
    gen::GeneratorConfig config;
    config.seed = 7;
    gen::TweetGenerator generator(config);
    const Timestamp window = minutes * kMillisPerMinute;

    std::vector<double> tag_share;
    std::vector<double> load_share;
    std::vector<double> num_components;
    std::vector<Document> docs;
    Timestamp boundary = window;
    Document doc = generator.Next();
    while (boundary <= total_span) {
      docs.clear();
      while (doc.time < boundary) {
        docs.push_back(doc);
        doc = generator.Next();
      }
      boundary += window;
      if (docs.empty()) continue;
      const auto snapshot =
          CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
      if (snapshot.components().empty()) continue;
      const ComponentStats& largest = snapshot.components()[0];
      tag_share.push_back(100.0 * static_cast<double>(largest.tags.size()) /
                          static_cast<double>(snapshot.num_tags()));
      load_share.push_back(100.0 * static_cast<double>(largest.load) /
                           static_cast<double>(snapshot.num_docs()));
      num_components.push_back(
          static_cast<double>(snapshot.components().size()));
    }

    auto avg = [](const std::vector<double>& v) {
      double s = 0;
      for (double x : v) s += x;
      return v.empty() ? 0.0 : s / static_cast<double>(v.size());
    };
    auto max = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
    };
    std::printf("%-8d %-8zu %-8.1f %-11.1f %-8.1f %-11.1f %-8.0f %-11.0f\n",
                minutes, tag_share.size(), avg(tag_share), max(tag_share),
                avg(load_share), max(load_share), avg(num_components),
                max(num_components));
  }

  std::printf(
      "\n§5.1 Erdős–Rényi view of the same windows (paper-calibrated "
      "stream, mmax=8, s=0.25):\n");
  std::printf("%-8s %-10s %-28s %-10s\n", "window", "n*p",
              "regime", "giant fraction");
  for (const int minutes : {2, 5, 10, 20}) {
    const double np = theory::PaperNpValue(minutes, 8);
    std::printf("%-8d %-10.2f %-28s %-10.3f\n", minutes, np,
                theory::RegimeName(theory::ClassifyRegime(np)).data(),
                theory::GiantComponentFraction(np));
  }
  return 0;
}
