// Micro-benchmarks of the durability path (src/storage + the pipeline
// codec): CRC-32C throughput (every durable byte is checksummed twice —
// once framed on write, once verified on read), checkpoint write/commit
// against both backends, chunk-parallel restore at several thread counts,
// and the Encode/Decode cost of a realistically sized pipeline capture.
// The memory backend isolates the format's CPU cost from disk; the posix
// numbers (tmp directory) include the fsync discipline the commit protocol
// actually pays.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/tagset.h"
#include "ops/checkpoint_state.h"
#include "ops/pipeline_checkpoint.h"
#include "storage/checkpoint.h"
#include "storage/crc32c.h"
#include "storage/storage.h"

namespace {

using namespace corrtrack;

// ---------------------------------------------------------------------------
// CRC-32C: bytes/second over payloads spanning a chunk's size range.

void BM_Crc32c(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string payload(n, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Crc32c::Of(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Crc32c)->Range(1 << 10, 8 << 20);

// ---------------------------------------------------------------------------
// Write / restore against the storage layer. The synthetic checkpoint
// mirrors the pipeline's shape: k calculator sections dominating the
// volume plus a handful of small control sections.

storage::CheckpointData SyntheticCheckpoint(int sections,
                                            size_t bytes_per_section) {
  storage::CheckpointData data;
  data.seq = 1;
  data.docs_ingested = 1000000;
  data.config_fingerprint = 0x5EED;
  for (int s = 0; s < sections; ++s) {
    char name[16];
    snprintf(name, sizeof(name), "calc_%04d", s);
    std::string payload(bytes_per_section, static_cast<char>('a' + s % 26));
    data.sections.push_back({name, std::move(payload)});
  }
  return data;
}

std::shared_ptr<storage::Storage> OpenBackend(const std::string& scheme,
                                              std::string* root) {
  if (scheme == "memory") {
    storage::MemoryStorage::Global()->Clear();
    *root = "/bench_ckpt";
    return std::shared_ptr<storage::Storage>(storage::MemoryStorage::Global(),
                                             [](storage::Storage*) {});
  }
  const auto dir =
      std::filesystem::temp_directory_path() / "corrtrack_ckpt_bench";
  std::filesystem::remove_all(dir);
  storage::OpenedStorage opened;
  storage::OpenStorage("file://" + dir.string(), &opened);
  *root = opened.root;
  return opened.storage;
}

void RunWriteBench(benchmark::State& state, const std::string& scheme) {
  const int sections = static_cast<int>(state.range(0));
  const size_t bytes = static_cast<size_t>(state.range(1));
  const storage::CheckpointData data = SyntheticCheckpoint(sections, bytes);
  std::string root;
  std::shared_ptr<storage::Storage> backend = OpenBackend(scheme, &root);
  // keep = 1: steady-state GC cost (delete one, write one) per iteration,
  // which is what a long-running pipeline pays.
  storage::CheckpointWriter writer(backend, root, storage::RetryPolicy(),
                                   /*keep=*/1);
  uint64_t total_bytes = 0;
  storage::CheckpointData versioned = data;
  for (auto _ : state) {
    ++versioned.seq;  // Each iteration commits a fresh directory.
    uint64_t written = 0;
    const storage::Status status = writer.Write(versioned, &written);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      break;
    }
    total_bytes += written;
  }
  backend->DeleteDirRecursive(root);
  state.SetBytesProcessed(static_cast<int64_t>(total_bytes));
  state.counters["sections"] = static_cast<double>(sections);
}

void BM_CheckpointWrite_Memory(benchmark::State& state) {
  RunWriteBench(state, "memory");
}
// {sections, bytes/section}: a small elastic topology and a wide one.
BENCHMARK(BM_CheckpointWrite_Memory)
    ->Args({8, 1 << 16})
    ->Args({8, 1 << 20})
    ->Args({32, 1 << 18});

void BM_CheckpointWrite_Posix(benchmark::State& state) {
  RunWriteBench(state, "posix");
}
BENCHMARK(BM_CheckpointWrite_Posix)
    ->Args({8, 1 << 16})
    ->Args({8, 1 << 20})
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointRestore_Memory(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::string root;
  std::shared_ptr<storage::Storage> backend = OpenBackend("memory", &root);
  storage::CheckpointWriter writer(backend, root);
  const storage::CheckpointData data = SyntheticCheckpoint(32, 1 << 18);
  uint64_t bytes = 0;
  writer.Write(data, &bytes);
  storage::CheckpointReader reader(backend, root, storage::RetryPolicy(),
                                   threads);
  for (auto _ : state) {
    storage::CheckpointData loaded;
    const storage::Status status = reader.ReadLatest(&loaded);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(loaded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.counters["restore_threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_CheckpointRestore_Memory)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// Pipeline codec: the CPU-only cost of turning a capture into sections and
// back, scaled by counter-table volume (the dominant term in practice).

ops::PipelineCheckpointState SyntheticPipelineState(int calculators,
                                                    int sets_per_calculator) {
  ops::PipelineCheckpointState state;
  state.docs_ingested = 1000000;
  state.live_calculators = calculators;
  state.max_calculators = calculators;
  uint32_t x = 12345;
  for (int c = 0; c < calculators; ++c) {
    ops::CalculatorState cs;
    cs.instance = c;
    cs.counters.reserve(static_cast<size_t>(sets_per_calculator));
    for (int s = 0; s < sets_per_calculator; ++s) {
      x = x * 1664525u + 1013904223u;  // LCG: arbitrary distinct pairs.
      TagId tags[2] = {static_cast<TagId>(x % 5000),
                       static_cast<TagId>(x % 5000 + 1 + x % 97)};
      cs.counters.emplace_back(TagSet::FromSorted(tags, tags + 2),
                               1 + x % 1000);
    }
    state.calculators.push_back(std::move(cs));
  }
  for (int t = 0; t < 5000; ++t) {
    state.parser.tags.push_back("tag_" + std::to_string(t));
  }
  return state;
}

void BM_EncodeCheckpoint(benchmark::State& state) {
  const ops::PipelineCheckpointState pipeline_state =
      SyntheticPipelineState(8, static_cast<int>(state.range(0)));
  int64_t bytes = 0;
  for (auto _ : state) {
    const storage::CheckpointData data =
        ops::EncodeCheckpoint(pipeline_state, 1, 0x5EED);
    bytes = 0;
    for (const auto& section : data.sections) {
      bytes += static_cast<int64_t>(section.payload.size());
    }
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_EncodeCheckpoint)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DecodeCheckpoint(benchmark::State& state) {
  const storage::CheckpointData data = ops::EncodeCheckpoint(
      SyntheticPipelineState(8, static_cast<int>(state.range(0))), 1, 0x5EED);
  int64_t bytes = 0;
  for (const auto& section : data.sections) {
    bytes += static_cast<int64_t>(section.payload.size());
  }
  for (auto _ : state) {
    ops::PipelineCheckpointState decoded;
    if (!ops::DecodeCheckpoint(data, &decoded)) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_DecodeCheckpoint)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

CORRTRACK_BENCHMARK_MAIN()
