// Micro-benchmarks of the partitioning algorithms themselves: runtime of
// CreatePartitions as a function of window size, for all four algorithms,
// plus the lazy-heap vs naive-rescan ablation for the set-cover phase-2
// selection (DESIGN.md calls this ablation out; the lazy heap turns the
// quadratic greedy into O(n log n) without changing the output — see
// LazyHeapEquivalenceTest).

#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/cooccurrence.h"
#include "core/partitioning.h"
#include "core/scc_algorithm.h"
#include "core/scl_algorithm.h"
#include "gen/tweet_generator.h"

namespace {

using namespace corrtrack;

/// Builds a realistic snapshot of `num_docs` synthetic documents.
CooccurrenceSnapshot MakeSnapshot(int num_docs) {
  gen::GeneratorConfig config;
  config.seed = 31;
  gen::TweetGenerator generator(config);
  std::vector<Document> docs;
  docs.reserve(static_cast<size_t>(num_docs));
  for (int i = 0; i < num_docs; ++i) docs.push_back(generator.Next());
  return CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
}

void BM_CreatePartitions(benchmark::State& state, AlgorithmKind kind) {
  const auto snapshot = MakeSnapshot(static_cast<int>(state.range(0)));
  const auto algorithm = MakeAlgorithm(kind);
  for (auto _ : state) {
    PartitionSet ps = algorithm->CreatePartitions(snapshot, 10, 7);
    benchmark::DoNotOptimize(ps.num_partitions());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(snapshot.tagsets().size()));
}

void BM_SnapshotBuild(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.seed = 31;
  gen::TweetGenerator generator(config);
  std::vector<Document> docs;
  for (int i = 0; i < state.range(0); ++i) docs.push_back(generator.Next());
  for (auto _ : state) {
    auto snapshot =
        CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
    benchmark::DoNotOptimize(snapshot.num_docs());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(docs.size()));
}

void BM_SccLazyHeap(benchmark::State& state) {
  const auto snapshot = MakeSnapshot(static_cast<int>(state.range(0)));
  const SccAlgorithm algorithm(/*use_lazy_heap=*/state.range(1) != 0);
  for (auto _ : state) {
    PartitionSet ps = algorithm.CreatePartitions(snapshot, 10, 7);
    benchmark::DoNotOptimize(ps.num_partitions());
  }
}

void BM_SclLazyHeap(benchmark::State& state) {
  const auto snapshot = MakeSnapshot(static_cast<int>(state.range(0)));
  const SclAlgorithm algorithm(/*use_lazy_heap=*/state.range(1) != 0);
  for (auto _ : state) {
    PartitionSet ps = algorithm.CreatePartitions(snapshot, 10, 7);
    benchmark::DoNotOptimize(ps.num_partitions());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_CreatePartitions, DS, AlgorithmKind::kDS)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CreatePartitions, SCC, AlgorithmKind::kSCC)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CreatePartitions, SCL, AlgorithmKind::kSCL)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CreatePartitions, SCI, AlgorithmKind::kSCI)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SnapshotBuild)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

// Ablation: {window docs, lazy?}. The naive rescan is quadratic in the
// number of distinct tagsets; cap its size so the bench stays fast.
BENCHMARK(BM_SccLazyHeap)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({8000, 0})
    ->Args({8000, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SclLazyHeap)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({8000, 0})
    ->Args({8000, 1})
    ->Unit(benchmark::kMillisecond);

CORRTRACK_BENCHMARK_MAIN();
