// Reproduces Figure 5 (a-d): the average error of the distributed Jaccard
// coefficients against the centralised baseline, over tagsets seen more
// than sn = 3 times (§8.2.3), plus the paper's coverage claim ("all
// algorithms manage to compute a Jaccard coefficient for more than 97% of
// the tagsets seen more than 3 times in the input").
//
// Expected shape (paper): errors are small fractions of the coefficient
// scale; repartition-heavy algorithms report multiple/partial coefficients
// and suffer; more Partitioners reduce SCC's error.

#include "bench/figure_common.h"

int main() {
  corrtrack::bench::RunFigureSweeps(
      "Figure 5 — Error vs centralised baseline (tagsets seen > 3 times)",
      {{"Error (avg |dJ|)",
        [](const corrtrack::exp::ExperimentResult& r) {
          return r.jaccard_error;
        },
        4},
       {"Coverage (fraction of baseline tagsets ever reported)",
        [](const corrtrack::exp::ExperimentResult& r) { return r.coverage; },
        3}});
  return 0;
}
