// Reproduces Figure 9 (a-d): Processing Load over time for each algorithm
// at the base configuration. For every stride of processed documents the
// per-Calculator shares of the stride's notifications are printed sorted
// descending (L1 = most loaded calculator ... Lk = least loaded), exactly
// how the paper sorts its load curves (§8.2.5).
//
// Expected shape (paper): for DS one calculator carries clearly more load
// right after each repartition, then the load evens out until the next
// one; SCL stays balanced throughout (all curves within a tight band);
// SCI/SCL series are dominated by their very frequent repartitions.

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"

int main() {
  using namespace corrtrack;
  using namespace corrtrack::exp;

  ExperimentConfig base = PaperBaseConfig();
  base.series_stride = 10000;
  std::printf("=== Figure 9 — Processing Load over time (sorted shares) ===\n");
  std::printf("base: %s, %llu documents, stride %llu docs\n\n",
              DescribeBase(base).c_str(),
              static_cast<unsigned long long>(base.num_documents),
              static_cast<unsigned long long>(base.series_stride));

  std::vector<std::future<ExperimentResult>> futures;
  for (AlgorithmKind kind : AllAlgorithms()) {
    ExperimentConfig config = base;
    config.pipeline.algorithm = kind;
    config.label = std::string(AlgorithmName(kind));
    futures.push_back(std::async(std::launch::async, [config] {
      return RunExperiment(config);
    }));
  }
  const auto algorithms = AllAlgorithms();
  for (size_t a = 0; a < algorithms.size(); ++a) {
    const ExperimentResult result = futures[a].get();
    const int k = base.pipeline.num_calculators;
    std::vector<std::string> columns;
    for (int i = 1; i <= k; ++i) columns.push_back("L" + std::to_string(i));
    std::vector<uint64_t> xs;
    std::vector<std::vector<double>> rows;
    std::vector<int> repartitions;
    for (const SeriesSample& sample : result.series) {
      xs.push_back(sample.docs_processed);
      rows.push_back(sample.sorted_loads);
      repartitions.push_back(sample.repartitions);
    }
    std::printf("%s\n",
                RenderSeries("(" + std::string(1, char('a' + a)) + ") " +
                                 result.label + " Load (sorted shares)",
                             columns, xs, rows, &repartitions)
                    .c_str());
    std::printf("  run Gini=%.3f, max share=%.3f\n\n", result.load_gini,
                result.max_load_share);
  }
  return 0;
}
