// Reproduces §5.2 ("Communication"): the closed-form expected communication
// load of equal-sized random partitions,
//
//   E[communication] = k * (1 - (C(v-m, m) / C(v, m))^(n/k)),
//
// swept over vocabulary size v and tags-per-tweet m, plus a Monte-Carlo
// validation of the formula.
//
// Expected shape (paper): "for small vocabulary and large number of tags
// per tweet, each incoming tweet needs to be sent to (almost) all
// partitions; a knockout blow for any decentralised approach. For large
// vocabularies and few tags per tweet, as is the case for Twitter data,
// the problem appears tractable."

#include <cstdio>
#include <initializer_list>

#include "theory/comm_model.h"

int main() {
  using namespace corrtrack::theory;

  const double n = 10000;  // Tweets forming the partitions.
  std::printf(
      "=== §5.2 — Expected communication of random equal partitions ===\n");
  std::printf("n = %.0f tweets forming the partitions\n\n", n);

  for (const double k : {5.0, 10.0, 20.0}) {
    std::printf("k = %.0f partitions\n", k);
    std::printf("  %-12s", "vocab v");
    for (const double m : {1.0, 2.0, 4.0, 8.0}) {
      std::printf("m=%-8.0f", m);
    }
    std::printf("\n");
    for (const double v : {100.0, 1000.0, 10000.0, 100000.0, 600000.0}) {
      std::printf("  %-12.0f", v);
      for (const double m : {1.0, 2.0, 4.0, 8.0}) {
        std::printf("%-10.3f", ExpectedCommunication(v, n, k, m));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("Monte-Carlo validation (k = 10, n = 1000, 4000 probes):\n");
  std::printf("  %-10s %-6s %-12s %-12s\n", "v", "m", "model", "simulated");
  struct Case {
    uint32_t v, m;
  };
  for (const Case c : {Case{500, 2}, Case{500, 5}, Case{5000, 2},
                       Case{5000, 5}, Case{50000, 3}}) {
    const double model = ExpectedCommunication(c.v, 1000, 10, c.m);
    const double sim = SimulateCommunication(c.v, 1000, 10, c.m, 4000, 99);
    std::printf("  %-10u %-6u %-12.3f %-12.3f\n", c.v, c.m, model, sim);
  }
  return 0;
}
