#ifndef CORRTRACK_BENCH_FIGURE_COMMON_H_
#define CORRTRACK_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"

namespace corrtrack::bench {

/// The four parameter sweeps shared by Figures 3-6 (§8.1), run against the
/// paper's base configuration. Prints one table per sub-figure.
///
/// `metric` extracts the plotted value from each run. Results are computed
/// once per sweep and can be reused by a second metric printer
/// (`extra_metric`, optional) — Figure 5 prints error and coverage.
struct MetricPrinter {
  std::string name;
  std::function<double(const exp::ExperimentResult&)> metric;
  int precision = 3;
};

inline void RunFigureSweeps(const std::string& figure_title,
                            const std::vector<MetricPrinter>& printers) {
  const exp::ExperimentConfig base = exp::PaperBaseConfig();
  std::printf("=== %s ===\n", figure_title.c_str());
  std::printf("base: %s, %llu documents per run\n\n",
              exp::DescribeBase(base).c_str(),
              static_cast<unsigned long long>(base.num_documents));

  struct SweepDef {
    const char* sub;
    const char* caption;
    std::vector<exp::SweepPoint> points;
    const char* fixed;
  };
  const SweepDef sweeps[] = {
      {"a", "Varying threshold", exp::ThresholdSweep(),
       "P=10 k=10 tps=1300"},
      {"b", "Varying Partitioners", exp::PartitionerSweep(),
       "k=10 thr=0.5 tps=1300"},
      {"c", "Varying partitions", exp::PartitionSweep(),
       "P=10 thr=0.5 tps=1300"},
      {"d", "Varying tweets rate", exp::RateSweep(), "P=10 k=10 thr=0.5"},
  };
  for (const SweepDef& sweep : sweeps) {
    const exp::SweepResults results = exp::RunSweep(sweep.points, base);
    for (const MetricPrinter& printer : printers) {
      const exp::FigureTable table = exp::MakeFigureTable(
          "(" + std::string(sweep.sub) + ") " + sweep.caption + " — " +
              printer.name,
          sweep.fixed, sweep.points, results, printer.metric,
          printer.precision);
      std::printf("%s\n", exp::RenderTable(table).c_str());
    }
  }
}

}  // namespace corrtrack::bench

#endif  // CORRTRACK_BENCH_FIGURE_COMMON_H_
