// Reproduces §5.1 ("Number of Disjoint Sets"): the Erdős–Rényi analysis of
// the tag co-occurrence graph.
//
//  * the Zipf tags-per-tweet model (s = 0.25, mmax up to 8) and the
//    expected edge count E[M];
//  * the paper's worked n·p values — 0.76 (5 min, mmax 8), 1.52 (10 min,
//    mmax 8), 0.85 (10 min, mmax 6) — against the 600 k tags / 7 M distinct
//    tweets per day worst case;
//  * the empirical counterpoint: ~5.5 M measured distinct tag pairs per day
//    give n·p = 0.11 for a 10-minute window ("the model is given a
//    pessimistic behaviour");
//  * a Monte-Carlo check that G(n, M) behaves as the theory predicts on
//    both sides of the np = 1 threshold.

#include <cstdio>

#include "theory/er_model.h"
#include "theory/zipf_math.h"

int main() {
  using namespace corrtrack::theory;

  std::printf("=== §5.1 — Number of disjoint sets (Erdős–Rényi analysis) ===\n\n");

  std::printf("Zipf tags-per-tweet frequencies f(m, mmax=8, s=0.25):\n  ");
  for (int m = 1; m <= 8; ++m) {
    std::printf("m=%d:%.3f  ", m, TagsPerTweetFrequency(m, 8, 0.25));
  }
  std::printf("\n\n");

  std::printf(
      "Expected edges per tweet (sum over m>=2 of f(m)*C(m,2)): mmax=8: "
      "%.3f, mmax=6: %.3f\n\n",
      ExpectedEdges(1, 8, 0.25), ExpectedEdges(1, 6, 0.25));

  std::printf("%-32s %-10s %-10s %s\n", "scenario", "paper", "model",
              "regime");
  struct Row {
    const char* name;
    double paper;
    double model;
  };
  const Row rows[] = {
      {"5 min window, mmax=8", 0.76, PaperNpValue(5, 8)},
      {"10 min window, mmax=8", 1.52, PaperNpValue(10, 8)},
      {"10 min window, mmax=6", 0.85, PaperNpValue(10, 6)},
      {"10 min, measured pairs", 0.11, PaperEmpiricalNp(10, 5500000)},
  };
  for (const Row& row : rows) {
    std::printf("%-32s %-10.2f %-10.2f %s\n", row.name, row.paper,
                row.model,
                RegimeName(ClassifyRegime(row.model)).data());
  }

  std::printf(
      "\nMonte-Carlo G(n, M), n = 600000 tags (largest component share; "
      "theory θ solves θ = 1 − e^{−npθ}):\n");
  std::printf("%-10s %-14s %-14s\n", "n*p", "simulated", "theory");
  for (const double np : {0.76, 0.85, 1.52, 2.0}) {
    const uint64_t n = 600000;
    const uint64_t m = static_cast<uint64_t>(np * n / 2.0);
    const uint64_t largest = SampleLargestComponent(n, m, /*seed=*/42);
    std::printf("%-10.2f %-14.4f %-14.4f\n", np,
                static_cast<double>(largest) / static_cast<double>(n),
                GiantComponentFraction(np));
  }
  std::printf(
      "\nReading: below np=1 all components are O(log n) — the DS algorithm "
      "finds many small disjoint sets; above it one giant component "
      "develops and DS cannot balance load without splitting (§8.3).\n");
  return 0;
}
