#ifndef CORRTRACK_BENCH_BENCH_MAIN_H_
#define CORRTRACK_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

// Build-type attestation for the merge guard in bench/run_bench.sh: the
// stock Google-Benchmark context only carries `library_build_type` — how
// the *benchmark library* was compiled (the distro package reports
// "debug") — which says nothing about the corrtrack code being measured.
// CORRTRACK_BUILD_TYPE_NAME is injected by CMake from CMAKE_BUILD_TYPE, so
// every JSON document these binaries emit states what optimization level
// the measured code actually had; run_bench.sh refuses to merge anything
// that is not attested "Release".
#ifndef CORRTRACK_BUILD_TYPE_NAME
#define CORRTRACK_BUILD_TYPE_NAME "unknown"
#endif

#define CORRTRACK_BENCHMARK_MAIN()                                        \
  int main(int argc, char** argv) {                                       \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::AddCustomContext("corrtrack_build_type",                   \
                                CORRTRACK_BUILD_TYPE_NAME);               \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }

#endif  // CORRTRACK_BENCH_BENCH_MAIN_H_
