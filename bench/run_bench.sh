#!/usr/bin/env bash
# Runs the micro benchmarks and records the results as BENCH_micro.json at
# the repo root, so the performance trajectory is tracked across PRs.
#
# Usage: bench/run_bench.sh [build_dir]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
BENCH_BIN="${BUILD_DIR}/bench_micro_pipeline"

if [[ ! -x "${BENCH_BIN}" ]]; then
  echo "error: ${BENCH_BIN} not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"${BENCH_BIN}" \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_micro.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_micro.json"
