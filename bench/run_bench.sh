#!/usr/bin/env bash
# Runs the micro benchmarks and records the results as BENCH_micro.json at
# the repo root, so the performance trajectory is tracked across PRs. The
# file contains the pipeline micro benchmarks (bench_micro_pipeline)
# followed by the serving-layer benchmarks (bench_serve_bench), the
# execution-substrate comparison (bench_runtime_bench: simulation vs
# threaded vs pool at 1/2/4/8 workers) and the telemetry overhead suite
# (bench_telemetry_bench: instrument hot paths plus BM_TracedPipeline at
# sampling 0/64/1 — the acceptance gate is every=64 within 5% of
# telemetry-off) and the socket-path suite (bench_net_bench: whole-stack
# request throughput and p50/p99 through loopback TCP, including the
# batching A/B whose measured depth:16 / depth:1 speedup at 8 connections
# is attested into context), merged into one Google-Benchmark JSON
# document: ingest throughput, read QPS, substrate scaling, observability
# overhead and network serving live side by side.
#
# Usage: bench/run_bench.sh [build_dir]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
PIPELINE_BIN="${BUILD_DIR}/bench_micro_pipeline"
SERVE_BIN="${BUILD_DIR}/bench_serve_bench"
RUNTIME_BIN="${BUILD_DIR}/bench_runtime_bench"
TELEMETRY_BIN="${BUILD_DIR}/bench_telemetry_bench"
NET_BIN="${BUILD_DIR}/bench_net_bench"

for bin in "${PIPELINE_BIN}" "${SERVE_BIN}" "${RUNTIME_BIN}" \
           "${TELEMETRY_BIN}" "${NET_BIN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found — build first:" >&2
    echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
    exit 1
  fi
done

# Benchmarks from a non-Release build undersell every optimization (the
# pre-PR-5 BENCH_micro.json was committed from a debug build and did
# exactly that). Refuse up front when the build tree isn't Release; the
# merge step below double-checks what the binaries themselves report
# (library_build_type) in case the cache lies.
CACHE="${BUILD_DIR}/CMakeCache.txt"
if [[ -f "${CACHE}" ]]; then
  BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${CACHE}")"
  if [[ "${BUILD_TYPE}" != "Release" ]]; then
    echo "error: ${BUILD_DIR} is configured as '${BUILD_TYPE:-<empty>}'," >&2
    echo "not Release; BENCH_micro.json numbers must come from a Release" >&2
    echo "build. Reconfigure:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

"${PIPELINE_BIN}" \
  --benchmark_format=json \
  --benchmark_out="${TMP_DIR}/pipeline.json" \
  --benchmark_out_format=json

"${SERVE_BIN}" \
  --benchmark_format=json \
  --benchmark_out="${TMP_DIR}/serve.json" \
  --benchmark_out_format=json

"${RUNTIME_BIN}" \
  --benchmark_format=json \
  --benchmark_out="${TMP_DIR}/runtime.json" \
  --benchmark_out_format=json

# Random interleaving shuffles the BM_TracedPipeline repetitions across
# the sample_every arms instead of running each arm's 5 reps
# back-to-back; machine drift between arms (frequency scaling, noisy
# neighbours) otherwise dwarfs the <5% overhead being measured.
"${TELEMETRY_BIN}" \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json \
  --benchmark_out="${TMP_DIR}/telemetry.json" \
  --benchmark_out_format=json

"${NET_BIN}" \
  --benchmark_format=json \
  --benchmark_out="${TMP_DIR}/net.json" \
  --benchmark_out_format=json

# Merging needs python3; bail out *before* touching BENCH_micro.json
# rather than silently committing a partial document.
if ! command -v python3 > /dev/null; then
  echo "error: python3 is required to merge the benchmark JSON documents;" >&2
  echo "BENCH_micro.json left untouched. Raw outputs:" >&2
  echo "  ${TMP_DIR}/pipeline.json ${TMP_DIR}/serve.json" \
       "${TMP_DIR}/runtime.json ${TMP_DIR}/telemetry.json" \
       "${TMP_DIR}/net.json" >&2
  trap - EXIT  # Keep the raw outputs around for manual merging.
  exit 1
fi

python3 - "${TMP_DIR}/pipeline.json" "${TMP_DIR}/serve.json" \
    "${TMP_DIR}/runtime.json" "${TMP_DIR}/telemetry.json" \
    "${TMP_DIR}/net.json" \
    "${REPO_ROOT}/BENCH_micro.json" <<'PY'
import json
import os
import re
import sys

(pipeline_path, serve_path, runtime_path, telemetry_path, net_path,
 out_path) = sys.argv[1:7]
# Refuse to merge non-Release numbers into the committed document. Two
# signals, strongest wins:
#  * context.corrtrack_build_type — our own attestation (bench_main.h,
#    stamped from CMAKE_BUILD_TYPE): what optimization the MEASURED code
#    had. Must be "release". Binaries without it predate the guard and are
#    rejected outright (the old committed numbers came from exactly such
#    unattested debug-quality runs).
#  * context.library_build_type — how the Google-Benchmark *library* was
#    compiled. A debug harness library (common for distro packages) only
#    slows the measurement scaffolding, so with a Release attestation it
#    is annotated, not fatal; without one, "debug" here is fatal.
for path in (pipeline_path, serve_path, runtime_path, telemetry_path,
             net_path):
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    corrtrack_build = ctx.get("corrtrack_build_type", "")
    library_build = ctx.get("library_build_type", "unknown")
    if corrtrack_build.lower() != "release":
        sys.stderr.write(
            "error: %s attests corrtrack_build_type '%s' (want 'Release'"
            "; library_build_type: %s). BENCH_micro.json left untouched — "
            "rebuild with -DCMAKE_BUILD_TYPE=Release\n"
            % (path, corrtrack_build or "<missing>", library_build))
        sys.exit(1)
with open(pipeline_path) as f:
    merged = json.load(f)
worker_counts = set()
for path in (serve_path, runtime_path, telemetry_path, net_path):
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]
    merged["benchmarks"].extend(benchmarks)
    for bench in benchmarks:
        m = re.search(r"/threads:(\d+)", bench.get("name", ""))
        if m:
            worker_counts.add(int(m.group(1)))
# Attest the telemetry overhead: items_per_second of the traced pipeline
# at the default 1-in-64 sampling vs telemetry detached, using the
# median across repetitions (single runs on a shared container jitter by
# more than the gate). The PR gate is < 5% regression; record the
# measured number so the claim is checkable from the committed document.
traced = {}
for bench in merged["benchmarks"]:
    m = re.match(
        r"BM_TracedPipeline/sample_every:(\d+)(?:/[^/]+)*/real_time_median$",
        bench.get("name", ""))
    if m and "items_per_second" in bench:
        traced[int(m.group(1))] = bench["items_per_second"]
if 0 in traced and 64 in traced and traced[0] > 0:
    overhead = (traced[0] - traced[64]) / traced[0] * 100.0
    merged.setdefault("context", {})["traced_pipeline_overhead_pct"] = round(
        overhead, 2)
# Attest the per-connection batching speedup: aggregate socket-path
# items/s of the pipelined TopCorrelated benchmark at depth:16 vs depth:1,
# both at 8 connections (the PR gate is >= 2x). Recorded so the claim is
# checkable from the committed document.
batched = {}
for bench in merged["benchmarks"]:
    m = re.match(
        r"BM_NetPipelinedTopCorrelated/depth:(\d+)(?:/[^/]+)*/threads:8$",
        bench.get("name", ""))
    if m and "items_per_second" in bench:
        batched[int(m.group(1))] = bench["items_per_second"]
if 1 in batched and 16 in batched and batched[1] > 0:
    speedup = batched[16] / batched[1]
    merged.setdefault("context", {})["net_batching_speedup_8conn"] = round(
        speedup, 2)
# Attest the overload containment: accepted-request p99 on the
# under-provisioned server at ~2x reader saturation vs uncontended (the
# PR gate is <= 3x), plus the shed count proving admission control
# actually engaged (a zero here would mean the "overloaded" arm never
# overloaded anything).
overload_p99 = {}
overload_shed = None
for bench in merged["benchmarks"]:
    name = bench.get("name", "")
    if re.match(r"BM_NetOverloadUncontended(?:/[^/]+)*$", name) \
            and "p99_us" in bench:
        overload_p99["uncontended"] = bench["p99_us"]
    if re.match(r"BM_NetOverloadSaturated(?:/[^/]+)*$", name) \
            and "p99_us" in bench:
        overload_p99["saturated"] = bench["p99_us"]
        overload_shed = bench.get("shed")
if "uncontended" in overload_p99 and "saturated" in overload_p99 \
        and overload_p99["uncontended"] > 0:
    context = merged.setdefault("context", {})
    context["net_overload_p99_ratio"] = round(
        overload_p99["saturated"] / overload_p99["uncontended"], 2)
    context["net_overload_uncontended_p99_us"] = round(
        overload_p99["uncontended"], 1)
    context["net_overload_accepted_p99_us"] = round(
        overload_p99["saturated"], 1)
    if overload_shed is not None:
        context["net_overload_shed_requests"] = int(overload_shed)
# Label the host so thread-scaling rows are interpretable: worker-count
# sweeps from a single-core container measure scheduling overhead, not
# scaling, and must be read as such.
host_cpus = os.cpu_count() or 1
context = merged.setdefault("context", {})
if context.get("library_build_type") != "release":
    context["benchmark_library_note"] = (
        "system Google-Benchmark library reports '%s'; the measured "
        "corrtrack code is attested Release (corrtrack_build_type) — a "
        "debug harness library only slows the measurement scaffolding"
        % context.get("library_build_type", "unknown"))
context["host_num_cpus"] = host_cpus
context["runtime_bench_worker_counts"] = sorted(worker_counts)
context["single_core_host"] = host_cpus == 1
if worker_counts and host_cpus < max(worker_counts):
    context["worker_scaling_note"] = (
        "worker counts exceed host cores (%d); treat multi-worker rows as "
        "overhead, not scaling" % host_cpus)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY
echo "wrote ${REPO_ROOT}/BENCH_micro.json (pipeline + serve + runtime +" \
     "telemetry + net; host cores, traced-pipeline overhead, net batching" \
     "speedup and overload p99 ratio in context)"
