// Telemetry overhead benchmarks: the instrument hot paths in isolation
// (histogram record single- and multi-threaded, counter increment,
// snapshot + exposition rendering) and the acceptance benchmark —
// BM_TracedPipeline runs the full Fig. 2 correlation topology with
// telemetry off (every=0), at the default 1-in-64 sampling, and fully
// traced (every=1). The PR gate is every=64 within 5% of every=0.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "gen/tweet_generator.h"
#include "ops/source.h"
#include "ops/topology_builder.h"
#include "telemetry/exposition.h"
#include "telemetry/histogram.h"
#include "telemetry/pipeline_telemetry.h"
#include "telemetry/registry.h"

namespace {

using namespace corrtrack;

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::LatencyHistogram hist;
  uint64_t v = 1;
  for (auto _ : state) {
    hist.Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 40;  // Vary buckets.
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(hist.Snapshot().count);
}

// Contended recording: all benchmark threads hammer ONE histogram. The
// per-thread stripes are what keeps this from collapsing into a single
// cache-line ping-pong.
void BM_HistogramRecordMT(benchmark::State& state) {
  static telemetry::LatencyHistogram* hist = new telemetry::LatencyHistogram();
  uint64_t v = static_cast<uint64_t>(state.thread_index()) + 1;
  for (auto _ : state) {
    hist->Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 40;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CounterIncrement(benchmark::State& state) {
  telemetry::MetricRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("bench");
  for (auto _ : state) counter->Increment();
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(counter->value());
}

// Snapshot + render cost for a registry shaped like the pipeline's: the
// exposition path runs off the hot path (periodic dumps, final harvest),
// so this bounds the cost of a dump tick.
void BM_SnapshotRender(benchmark::State& state) {
  telemetry::PipelineTelemetry telemetry(/*sample_every=*/1);
  uint64_t v = 17;
  for (int i = 0; i < 100000; ++i) {
    v = v * 2862933555777941757ULL + 3037000493ULL;
    telemetry.parser_proc->Record(v % 50);
    telemetry.doc_e2e->Record(v % 5000);
    telemetry.docs_parsed->Increment();
  }
  for (auto _ : state) {
    const std::string text =
        telemetry::RenderPrometheus(telemetry.registry.Snapshot());
    benchmark::DoNotOptimize(text.size());
  }
  state.SetItemsProcessed(state.iterations());
}

std::vector<Document> MakeDocs(int n) {
  gen::GeneratorConfig config;
  config.seed = 77;
  gen::TweetGenerator generator(config);
  std::vector<Document> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) docs.push_back(generator.Next());
  return docs;
}

// Full correlation pipeline on the deterministic substrate, parameterized
// by trace sampling: 0 = telemetry detached entirely (the PipelineConfig
// carries a null telemetry pointer — the pre-PR baseline), 64 = default
// 1-in-64 sampling, 1 = every document stamped and timed.
void BM_TracedPipeline(benchmark::State& state) {
  const int sample_every = static_cast<int>(state.range(0));
  const auto docs = MakeDocs(8000);
  ops::PipelineConfig pipeline;
  pipeline.algorithm = AlgorithmKind::kDS;
  pipeline.num_calculators = 4;
  pipeline.num_partitioners = 3;
  pipeline.window_span = kMillisPerMinute;
  pipeline.report_period = kMillisPerMinute;
  pipeline.bootstrap_time = kMillisPerMinute;
  for (auto _ : state) {
    std::unique_ptr<telemetry::PipelineTelemetry> telemetry;
    if (sample_every > 0) {
      telemetry = std::make_unique<telemetry::PipelineTelemetry>(
          static_cast<uint32_t>(sample_every));
      pipeline.telemetry = telemetry.get();
    } else {
      pipeline.telemetry = nullptr;
    }
    stream::Topology<ops::Message> topology;
    ops::BuildCorrelationTopology(
        &topology, std::make_unique<ops::ReplaySpout>(docs), pipeline,
        nullptr, /*with_centralized_baseline=*/false);
    auto runtime = ops::MakeConfiguredRuntime(&topology, pipeline);
    runtime->Run(pipeline.report_period);
    benchmark::DoNotOptimize(runtime->TuplesDelivered(1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(docs.size()));
}

}  // namespace

BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_HistogramRecordMT)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_CounterIncrement);
BENCHMARK(BM_SnapshotRender)->Unit(benchmark::kMicrosecond);
// Repetitions + median: single pipeline runs on a shared container jitter
// by 10%+, which would swamp the <5% overhead gate; the per-arg medians
// are what run_bench.sh attests in BENCH_micro.json.
BENCHMARK(BM_TracedPipeline)
    ->ArgName("sample_every")
    ->Arg(0)
    ->Arg(64)
    ->Arg(1)
    ->MinTime(1.0)
    ->Repetitions(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

CORRTRACK_BENCHMARK_MAIN();
