// Pipeline-throughput comparison of the execution substrates: the
// deterministic simulator, the one-thread-per-task ThreadedRuntime and the
// work-stealing PoolRuntime at 1/2/4/8 workers.
//
// Two topologies:
//  * Shuffle: spout -> 32 CPU-bound worker bolts -> global sink. 32 logical
//    tasks is the tasks >> threads regime the pool exists for; per-envelope
//    work (~500 splitmix64 rounds) dominates queue overhead so the numbers
//    measure scheduling, not memcpy. Throughput = envelopes/s through the
//    worker stage.
//  * Correlation: the full Fig. 2 topology over a fixed 8000-document
//    replayed stream (items/s = documents/s end to end).
//
// Thread-count scaling is only visible on multi-core hardware; on a
// single-core container the pool points mainly quantify scheduling
// overhead versus the threaded substrate at equal parallelism.

#include <memory>
#include <variant>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "gen/tweet_generator.h"
#include "ops/messages.h"
#include "ops/source.h"
#include "ops/topology_builder.h"
#include "stream/runtime_factory.h"

namespace {

using namespace corrtrack;

struct Value {
  uint64_t v = 0;
};
/// Broadcast-bench payload: big enough (4 KiB) that a per-destination deep
/// copy dominates routing cost — the cost shared-payload envelopes delete.
struct Blob {
  std::vector<uint64_t> data;
};
using Msg = std::variant<Value, Blob>;

constexpr int kShuffleDocs = 10000;
constexpr int kShuffleTasks = 32;  // Logical tasks >> typical core counts.
constexpr int kWorkRounds = 500;   // splitmix64 rounds per envelope.

class CountingSpout : public stream::Spout<Msg> {
 public:
  explicit CountingSpout(int n) : n_(n) {}
  bool Next(Msg* out, Timestamp* time) override {
    if (i_ >= n_) return false;
    *out = Value{static_cast<uint64_t>(i_)};
    *time = static_cast<Timestamp>(i_);
    ++i_;
    return true;
  }

 private:
  int n_;
  int i_ = 0;
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// CPU-bound stage: kWorkRounds hash rounds per envelope, result forwarded
/// so the sink keeps the whole chain live.
class HashingBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>& out) override {
    uint64_t h = std::get<Value>(in.payload()).v;
    for (int i = 0; i < kWorkRounds; ++i) h = SplitMix64(h);
    out.Emit(Msg{Value{h}});
  }
};

class SummingBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>&) override {
    sum += std::get<Value>(in.payload()).v;
  }
  uint64_t sum = 0;
};

void RunShuffleOnce(stream::RuntimeKind kind, int threads,
                    benchmark::State& state) {
  stream::Topology<Msg> topology;
  const int spout = topology.AddSpout(
      "src", std::make_unique<CountingSpout>(kShuffleDocs));
  const int workers = topology.AddBolt(
      "work", [](int) { return std::make_unique<HashingBolt>(); },
      kShuffleTasks);
  SummingBolt* sink_bolt = nullptr;
  const int sink = topology.AddBolt(
      "sink",
      [&sink_bolt](int) {
        auto b = std::make_unique<SummingBolt>();
        sink_bolt = b.get();
        return b;
      },
      1);
  topology.Subscribe(workers, spout, stream::Grouping<Msg>::Shuffle());
  topology.Subscribe(sink, workers, stream::Grouping<Msg>::Global());
  stream::RuntimeOptions options;
  options.num_threads = threads;
  auto runtime = stream::MakeRuntime<Msg>(kind, &topology, options);
  runtime->Run();
  if (sink_bolt->sum == 0) state.SkipWithError("hash sum vanished");
  benchmark::DoNotOptimize(sink_bolt->sum);
}

void ShuffleBench(benchmark::State& state, stream::RuntimeKind kind,
                  int threads) {
  for (auto _ : state) RunShuffleOnce(kind, threads, state);
  state.SetItemsProcessed(state.iterations() * kShuffleDocs);
}

void BM_ShuffleSimulation(benchmark::State& state) {
  ShuffleBench(state, stream::RuntimeKind::kSimulation, 0);
}

void BM_ShuffleThreaded(benchmark::State& state) {
  // 32 worker tasks -> 33 OS threads, however many cores exist.
  ShuffleBench(state, stream::RuntimeKind::kThreaded, 0);
}

void BM_ShufflePool(benchmark::State& state) {
  ShuffleBench(state, stream::RuntimeKind::kPool,
               static_cast<int>(state.range(0)));
}

// --------------------------------------------------------------------------
// BM_BroadcastFanout: one emission fanned out to k consumers. The engine
// shares a single refcounted payload block across the fan-out (zero-copy);
// BM_BroadcastFanoutCopy is the deep-copy reference — the producer sends
// each consumer its own copy of the same blob, which is exactly what
// RouteAlongEdges itself did per destination before shared-payload
// envelopes. Items processed = deliveries (docs x k), so the two report
// per-delivery cost side by side in BENCH_micro.json.
// --------------------------------------------------------------------------

constexpr int kFanoutDocs = 5000;
constexpr size_t kBlobWords = 512;  // 4 KiB payload.

class BlobSpout : public stream::Spout<Msg> {
 public:
  explicit BlobSpout(int n) : n_(n) {
    blob_.data.assign(kBlobWords, 0x5eedULL);
  }
  bool Next(Msg* out, Timestamp* time) override {
    if (i_ >= n_) return false;
    blob_.data[0] = static_cast<uint64_t>(i_);
    *out = blob_;
    *time = static_cast<Timestamp>(i_);
    ++i_;
    return true;
  }

 private:
  int n_;
  int i_ = 0;
  Blob blob_;
};

/// Shared fan-out: emit once, the kAll edge shares the payload k ways.
class BroadcastBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>& out) override {
    out.Emit(in.payload());
  }
};

/// Deep-copy reference: hand every consumer instance its own copy — the
/// per-destination cost model the engine had before shared payloads.
class CopyFanBolt : public stream::Bolt<Msg> {
 public:
  explicit CopyFanBolt(int k) : k_(k) {}
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>& out) override {
    for (int i = 0; i < k_; ++i) out.EmitDirect(i, in.payload());
  }

 private:
  int k_;
};

class BlobSinkBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>&) override {
    sum += std::get<Blob>(in.payload()).data[0];
  }
  uint64_t sum = 0;
};

void BroadcastBench(benchmark::State& state, bool deep_copy) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    stream::Topology<Msg> topology;
    const int spout =
        topology.AddSpout("src", std::make_unique<BlobSpout>(kFanoutDocs));
    const int fan = topology.AddBolt(
        "fan",
        [&](int) -> std::unique_ptr<stream::Bolt<Msg>> {
          if (deep_copy) return std::make_unique<CopyFanBolt>(k);
          return std::make_unique<BroadcastBolt>();
        },
        1);
    BlobSinkBolt* first_sink = nullptr;
    const int sinks = topology.AddBolt(
        "sink",
        [&first_sink](int) {
          auto b = std::make_unique<BlobSinkBolt>();
          if (first_sink == nullptr) first_sink = b.get();
          return b;
        },
        k);
    topology.Subscribe(fan, spout, stream::Grouping<Msg>::Shuffle());
    topology.Subscribe(sinks, fan,
                       deep_copy ? stream::Grouping<Msg>::Direct()
                                 : stream::Grouping<Msg>::All());
    stream::SimulationRuntime<Msg> runtime(&topology);
    runtime.Run();
    if (first_sink->sum == 0) state.SkipWithError("blob sum vanished");
    benchmark::DoNotOptimize(first_sink->sum);
  }
  state.SetItemsProcessed(state.iterations() * kFanoutDocs * k);
}

void BM_BroadcastFanout(benchmark::State& state) {
  BroadcastBench(state, /*deep_copy=*/false);
}

void BM_BroadcastFanoutCopy(benchmark::State& state) {
  BroadcastBench(state, /*deep_copy=*/true);
}

// --------------------------------------------------------------------------
// BM_EnvelopeAlloc: per-envelope engine overhead on a minimal pass-through
// chain (spout -> forward -> sink, trivial payloads). In steady state every
// payload block is served from the task arenas' free lists
// (RuntimeStats::arena_reuses ~ envelopes), so this measures the recycled
// hot path: no `new`/`delete` per tuple.
// --------------------------------------------------------------------------

constexpr int kAllocDocs = 20000;

class ForwardBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>& out) override {
    out.Emit(in.payload());
  }
};

void BM_EnvelopeAlloc(benchmark::State& state) {
  uint64_t reuses = 0;
  uint64_t moved = 0;
  for (auto _ : state) {
    stream::Topology<Msg> topology;
    const int spout = topology.AddSpout(
        "src", std::make_unique<CountingSpout>(kAllocDocs));
    const int forward = topology.AddBolt(
        "fwd", [](int) { return std::make_unique<ForwardBolt>(); }, 1);
    SummingBolt* sink_bolt = nullptr;
    const int sink = topology.AddBolt(
        "sink",
        [&sink_bolt](int) {
          auto b = std::make_unique<SummingBolt>();
          sink_bolt = b.get();
          return b;
        },
        1);
    topology.Subscribe(forward, spout, stream::Grouping<Msg>::Shuffle());
    topology.Subscribe(sink, forward, stream::Grouping<Msg>::Global());
    stream::SimulationRuntime<Msg> runtime(&topology);
    runtime.Run();
    benchmark::DoNotOptimize(sink_bolt->sum);
    reuses += runtime.stats().arena_reuses;
    moved += runtime.stats().envelopes_moved;
  }
  state.SetItemsProcessed(state.iterations() * kAllocDocs);
  state.counters["arena_reuse_ratio"] = benchmark::Counter(
      moved > 0 ? static_cast<double>(reuses) / static_cast<double>(moved)
                : 0.0);
}

std::vector<Document> MakeDocs(int n) {
  gen::GeneratorConfig config;
  config.seed = 77;
  gen::TweetGenerator generator(config);
  std::vector<Document> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) docs.push_back(generator.Next());
  return docs;
}

void CorrelationBench(benchmark::State& state, stream::RuntimeKind kind,
                      int threads) {
  const auto docs = MakeDocs(8000);
  ops::PipelineConfig pipeline;
  pipeline.algorithm = AlgorithmKind::kDS;
  pipeline.num_calculators = 4;
  pipeline.num_partitioners = 3;
  pipeline.window_span = kMillisPerMinute;
  pipeline.report_period = kMillisPerMinute;
  pipeline.bootstrap_time = kMillisPerMinute;
  pipeline.runtime = kind;
  pipeline.num_threads = threads;
  pipeline.queue_capacity = 256;
  for (auto _ : state) {
    stream::Topology<ops::Message> topology;
    ops::BuildCorrelationTopology(
        &topology, std::make_unique<ops::ReplaySpout>(docs), pipeline,
        nullptr, /*with_centralized_baseline=*/false);
    auto runtime = ops::MakeConfiguredRuntime(&topology, pipeline);
    runtime->Run(pipeline.report_period);
    benchmark::DoNotOptimize(runtime->TuplesDelivered(1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(docs.size()));
}

void BM_CorrelationSimulation(benchmark::State& state) {
  CorrelationBench(state, stream::RuntimeKind::kSimulation, 0);
}

void BM_CorrelationThreaded(benchmark::State& state) {
  CorrelationBench(state, stream::RuntimeKind::kThreaded, 0);
}

void BM_CorrelationPool(benchmark::State& state) {
  CorrelationBench(state, stream::RuntimeKind::kPool,
                   static_cast<int>(state.range(0)));
}

}  // namespace

// UseRealTime: the workers run outside the main thread, so wall clock —
// not main-thread CPU time — is the meaningful throughput denominator.
BENCHMARK(BM_ShuffleSimulation)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ShuffleThreaded)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ShufflePool)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_BroadcastFanout)
    ->ArgName("k")
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BroadcastFanoutCopy)
    ->ArgName("k")
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EnvelopeAlloc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CorrelationSimulation)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_CorrelationThreaded)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_CorrelationPool)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

CORRTRACK_BENCHMARK_MAIN();
