// Pipeline-throughput comparison of the execution substrates: the
// deterministic simulator, the one-thread-per-task ThreadedRuntime and the
// work-stealing PoolRuntime at 1/2/4/8 workers.
//
// Two topologies:
//  * Shuffle: spout -> 32 CPU-bound worker bolts -> global sink. 32 logical
//    tasks is the tasks >> threads regime the pool exists for; per-envelope
//    work (~500 splitmix64 rounds) dominates queue overhead so the numbers
//    measure scheduling, not memcpy. Throughput = envelopes/s through the
//    worker stage.
//  * Correlation: the full Fig. 2 topology over a fixed 8000-document
//    replayed stream (items/s = documents/s end to end).
//
// Thread-count scaling is only visible on multi-core hardware; on a
// single-core container the pool points mainly quantify scheduling
// overhead versus the threaded substrate at equal parallelism.

#include <memory>
#include <variant>
#include <vector>

#include <benchmark/benchmark.h>

#include "gen/tweet_generator.h"
#include "ops/messages.h"
#include "ops/source.h"
#include "ops/topology_builder.h"
#include "stream/runtime_factory.h"

namespace {

using namespace corrtrack;

struct Value {
  uint64_t v = 0;
};
using Msg = std::variant<Value>;

constexpr int kShuffleDocs = 10000;
constexpr int kShuffleTasks = 32;  // Logical tasks >> typical core counts.
constexpr int kWorkRounds = 500;   // splitmix64 rounds per envelope.

class CountingSpout : public stream::Spout<Msg> {
 public:
  explicit CountingSpout(int n) : n_(n) {}
  bool Next(Msg* out, Timestamp* time) override {
    if (i_ >= n_) return false;
    *out = Value{static_cast<uint64_t>(i_)};
    *time = static_cast<Timestamp>(i_);
    ++i_;
    return true;
  }

 private:
  int n_;
  int i_ = 0;
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// CPU-bound stage: kWorkRounds hash rounds per envelope, result forwarded
/// so the sink keeps the whole chain live.
class HashingBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>& out) override {
    uint64_t h = std::get<Value>(in.payload).v;
    for (int i = 0; i < kWorkRounds; ++i) h = SplitMix64(h);
    out.Emit(Msg{Value{h}});
  }
};

class SummingBolt : public stream::Bolt<Msg> {
 public:
  void Execute(const stream::Envelope<Msg>& in,
               stream::Emitter<Msg>&) override {
    sum += std::get<Value>(in.payload).v;
  }
  uint64_t sum = 0;
};

void RunShuffleOnce(stream::RuntimeKind kind, int threads,
                    benchmark::State& state) {
  stream::Topology<Msg> topology;
  const int spout = topology.AddSpout(
      "src", std::make_unique<CountingSpout>(kShuffleDocs));
  const int workers = topology.AddBolt(
      "work", [](int) { return std::make_unique<HashingBolt>(); },
      kShuffleTasks);
  SummingBolt* sink_bolt = nullptr;
  const int sink = topology.AddBolt(
      "sink",
      [&sink_bolt](int) {
        auto b = std::make_unique<SummingBolt>();
        sink_bolt = b.get();
        return b;
      },
      1);
  topology.Subscribe(workers, spout, stream::Grouping<Msg>::Shuffle());
  topology.Subscribe(sink, workers, stream::Grouping<Msg>::Global());
  stream::RuntimeOptions options;
  options.num_threads = threads;
  auto runtime = stream::MakeRuntime<Msg>(kind, &topology, options);
  runtime->Run();
  if (sink_bolt->sum == 0) state.SkipWithError("hash sum vanished");
  benchmark::DoNotOptimize(sink_bolt->sum);
}

void ShuffleBench(benchmark::State& state, stream::RuntimeKind kind,
                  int threads) {
  for (auto _ : state) RunShuffleOnce(kind, threads, state);
  state.SetItemsProcessed(state.iterations() * kShuffleDocs);
}

void BM_ShuffleSimulation(benchmark::State& state) {
  ShuffleBench(state, stream::RuntimeKind::kSimulation, 0);
}

void BM_ShuffleThreaded(benchmark::State& state) {
  // 32 worker tasks -> 33 OS threads, however many cores exist.
  ShuffleBench(state, stream::RuntimeKind::kThreaded, 0);
}

void BM_ShufflePool(benchmark::State& state) {
  ShuffleBench(state, stream::RuntimeKind::kPool,
               static_cast<int>(state.range(0)));
}

std::vector<Document> MakeDocs(int n) {
  gen::GeneratorConfig config;
  config.seed = 77;
  gen::TweetGenerator generator(config);
  std::vector<Document> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) docs.push_back(generator.Next());
  return docs;
}

void CorrelationBench(benchmark::State& state, stream::RuntimeKind kind,
                      int threads) {
  const auto docs = MakeDocs(8000);
  ops::PipelineConfig pipeline;
  pipeline.algorithm = AlgorithmKind::kDS;
  pipeline.num_calculators = 4;
  pipeline.num_partitioners = 3;
  pipeline.window_span = kMillisPerMinute;
  pipeline.report_period = kMillisPerMinute;
  pipeline.bootstrap_time = kMillisPerMinute;
  pipeline.runtime = kind;
  pipeline.num_threads = threads;
  pipeline.queue_capacity = 256;
  for (auto _ : state) {
    stream::Topology<ops::Message> topology;
    ops::BuildCorrelationTopology(
        &topology, std::make_unique<ops::ReplaySpout>(docs), pipeline,
        nullptr, /*with_centralized_baseline=*/false);
    auto runtime = ops::MakeConfiguredRuntime(&topology, pipeline);
    runtime->Run(pipeline.report_period);
    benchmark::DoNotOptimize(runtime->TuplesDelivered(1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(docs.size()));
}

void BM_CorrelationSimulation(benchmark::State& state) {
  CorrelationBench(state, stream::RuntimeKind::kSimulation, 0);
}

void BM_CorrelationThreaded(benchmark::State& state) {
  CorrelationBench(state, stream::RuntimeKind::kThreaded, 0);
}

void BM_CorrelationPool(benchmark::State& state) {
  CorrelationBench(state, stream::RuntimeKind::kPool,
                   static_cast<int>(state.range(0)));
}

}  // namespace

// UseRealTime: the workers run outside the main thread, so wall clock —
// not main-thread CPU time — is the meaningful throughput denominator.
BENCHMARK(BM_ShuffleSimulation)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ShuffleThreaded)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ShufflePool)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_CorrelationSimulation)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_CorrelationThreaded)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_CorrelationPool)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
