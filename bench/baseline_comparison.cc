// Baseline comparison supporting §2's related-work argument.
//
//  * Kernighan–Lin graph partitioning "could be used in our setting ...
//    [but is] deemed computationally expensive considering ... any
//    partitioning computed will be valid/appropriate only for a short
//    period": we measure KL's runtime against the paper's algorithms on
//    the same windows. Quality-wise KL is competitive; the cost of
//    recomputing it at the paper's repartition cadence is what rules it
//    out.
//  * Naive per-tag hash partitioning (the random partitions of §5.2's
//    model): balanced and replication-free, but it leaves most multi-tag
//    tagsets covered by no Calculator — requirement 1 of §1.1 — so their
//    coefficients cannot be computed at all.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cooccurrence.h"
#include "core/hash_baseline.h"
#include "core/kl_algorithm.h"
#include "core/partitioning.h"
#include "core/spectral_algorithm.h"
#include "gen/tweet_generator.h"

namespace {

using namespace corrtrack;

double MultiTagCoverage(const CooccurrenceSnapshot& snapshot,
                        const PartitionSet& ps) {
  uint64_t covered = 0;
  uint64_t total = 0;
  for (const TagsetStats& stats : snapshot.tagsets()) {
    if (stats.tags.size() < 2) continue;
    total += stats.count;
    if (ps.CoveringPartition(stats.tags).has_value()) covered += stats.count;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(covered) /
                          static_cast<double>(total);
}

}  // namespace

int main() {
  const int k = 10;
  std::printf("=== Baseline comparison (§2): KL graph partitioning and "
              "per-tag hashing ===\n\n");

  for (const int minutes : {2, 5, 10}) {
    gen::GeneratorConfig config;
    config.seed = 11;
    gen::TweetGenerator generator(config);
    std::vector<Document> docs;
    while (docs.empty() ||
           docs.back().time < minutes * kMillisPerMinute) {
      docs.push_back(generator.Next());
    }
    const auto snapshot =
        CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
    std::printf("window %d min: %llu docs, %zu tagsets\n", minutes,
                static_cast<unsigned long long>(snapshot.num_docs()),
                snapshot.tagsets().size());
    std::printf("  %-10s %-10s %-10s %-10s %-12s %-12s\n", "method",
                "runtime", "avg comm", "gini", "coverage", "cover(m>=2)");

    struct Entry {
      const char* name;
      std::unique_ptr<PartitioningAlgorithm> algorithm;
    };
    std::vector<Entry> entries;
    entries.push_back({"DS", MakeAlgorithm(AlgorithmKind::kDS)});
    entries.push_back({"SCC", MakeAlgorithm(AlgorithmKind::kSCC)});
    entries.push_back({"SCL", MakeAlgorithm(AlgorithmKind::kSCL)});
    entries.push_back({"KL", std::make_unique<KlAlgorithm>()});
    entries.push_back({"spectral", std::make_unique<SpectralAlgorithm>()});
    entries.push_back(
        {"spec+KL", std::make_unique<SpectralAlgorithm>(/*kl_refine=*/true)});

    for (const Entry& entry : entries) {
      const auto start = std::chrono::steady_clock::now();
      const PartitionSet ps =
          entry.algorithm->CreatePartitions(snapshot, k, 5);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      const PartitionQuality q = EvaluatePartitionQuality(snapshot, ps);
      std::printf("  %-10s %7.1fms %-10.3f %-10.3f %-12.3f %-12.3f\n",
                  entry.name, ms, q.avg_communication, q.load_gini,
                  q.coverage, MultiTagCoverage(snapshot, ps));
    }
    {
      const auto start = std::chrono::steady_clock::now();
      const PartitionSet ps = HashPartitionBaseline(snapshot, k, 5);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      const PartitionQuality q = EvaluatePartitionQuality(snapshot, ps);
      std::printf("  %-10s %7.1fms %-10.3f %-10.3f %-12.3f %-12.3f\n",
                  "hash", ms, q.avg_communication, q.load_gini, q.coverage,
                  MultiTagCoverage(snapshot, ps));
    }
    std::printf("\n");
  }
  std::printf(
      "reading: KL quality is competitive but its runtime grows steeply "
      "with the window — at the repartition cadence of §8 (every few "
      "thousand documents) that cost recurs constantly, which is the "
      "paper's argument for purpose-built algorithms. Per-tag hashing is "
      "balanced but leaves most multi-tag tagsets uncovered: their "
      "coefficients can never be computed.\n");
  return 0;
}
