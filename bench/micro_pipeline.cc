// Micro-benchmarks of the per-document hot path: subset counting
// (Calculator), routing through the tag -> partition index (Disseminator),
// inclusion-exclusion reporting, hashtag parsing, and partition-quality
// evaluation.

#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/cooccurrence.h"
#include "core/jaccard.h"
#include "core/partition.h"
#include "core/partitioning.h"
#include "gen/tweet_generator.h"
#include "ops/parser.h"

namespace {

using namespace corrtrack;

std::vector<Document> MakeDocs(int n) {
  gen::GeneratorConfig config;
  config.seed = 77;
  gen::TweetGenerator generator(config);
  std::vector<Document> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) docs.push_back(generator.Next());
  return docs;
}

void BM_CalculatorObserve(benchmark::State& state) {
  const auto docs = MakeDocs(20000);
  for (auto _ : state) {
    SubsetCounterTable table;
    for (const Document& doc : docs) table.Observe(doc.tags);
    benchmark::DoNotOptimize(table.num_counters());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(docs.size()));
}

void BM_CalculatorReportAll(benchmark::State& state) {
  const auto docs = MakeDocs(20000);
  SubsetCounterTable table;
  for (const Document& doc : docs) table.Observe(doc.tags);
  for (auto _ : state) {
    auto estimates = table.ReportAll();
    benchmark::DoNotOptimize(estimates.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_counters()));
}

void BM_DisseminatorRoute(benchmark::State& state) {
  const auto docs = MakeDocs(20000);
  const auto snapshot =
      CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
  const auto algorithm =
      MakeAlgorithm(static_cast<AlgorithmKind>(state.range(0)));
  const PartitionSet ps = algorithm->CreatePartitions(snapshot, 10, 7);
  std::vector<RoutedSubset> routed;
  size_t i = 0;
  for (auto _ : state) {
    const int n = ps.Route(docs[i].tags, &routed);
    benchmark::DoNotOptimize(n);
    i = (i + 1) % docs.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ParserExtract(benchmark::State& state) {
  const auto docs = MakeDocs(5000);
  std::vector<std::string> texts;
  texts.reserve(docs.size());
  for (const Document& doc : docs) {
    texts.push_back(gen::TweetGenerator::RenderText(doc));
  }
  ops::ParserBolt parser;
  size_t i = 0;
  for (auto _ : state) {
    auto tags = parser.ExtractHashtags(texts[i]);
    benchmark::DoNotOptimize(tags.size());
    i = (i + 1) % texts.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EvaluatePartitionQuality(benchmark::State& state) {
  const auto docs = MakeDocs(20000);
  const auto snapshot =
      CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
  const PartitionSet ps =
      MakeAlgorithm(AlgorithmKind::kSCL)->CreatePartitions(snapshot, 10, 7);
  for (auto _ : state) {
    const PartitionQuality q = EvaluatePartitionQuality(snapshot, ps);
    benchmark::DoNotOptimize(q.avg_communication);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(snapshot.tagsets().size()));
}

void BM_GeneratorNext(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.seed = 5;
  gen::TweetGenerator generator(config);
  for (auto _ : state) {
    Document doc = generator.Next();
    benchmark::DoNotOptimize(doc.id);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_CalculatorObserve)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CalculatorReportAll)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DisseminatorRoute)
    ->Arg(static_cast<int>(AlgorithmKind::kDS))
    ->Arg(static_cast<int>(AlgorithmKind::kSCL));
BENCHMARK(BM_ParserExtract);
BENCHMARK(BM_EvaluatePartitionQuality)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GeneratorNext);

CORRTRACK_BENCHMARK_MAIN();
