// Ablation for §8.3's "lesson learned": "Ultimately, disjoint sets should
// form the basis of all partitioning algorithms, but large ones need to be
// split (to not impair the load balancing), for instance by applying
// set-cover-based algorithms like SCL."
//
// DsSplitAlgorithm implements exactly that. This harness sweeps the
// max-component-share knob over windows with increasingly dominant giant
// components and reports the trade-off against plain DS and SCL:
// communication (replication) vs the worst partition's load share.

#include <cstdio>
#include <initializer_list>
#include <memory>
#include <vector>

#include "core/cooccurrence.h"
#include "core/ds_algorithm.h"
#include "core/partitioning.h"
#include "core/scl_algorithm.h"
#include "gen/tweet_generator.h"

int main() {
  using namespace corrtrack;

  std::printf("=== Ablation — splitting oversized disjoint sets (§8.3) ===\n\n");
  const int k = 10;
  for (const double joint_prob : {0.004, 0.02, 0.05}) {
    gen::GeneratorConfig config;
    config.seed = 23;
    config.topics.joint_prob = joint_prob;
    gen::TweetGenerator generator(config);
    std::vector<Document> docs;
    while (docs.empty() || docs.back().time < 5 * kMillisPerMinute) {
      docs.push_back(generator.Next());
    }
    const auto snapshot =
        CooccurrenceSnapshot::FromDocuments(docs.begin(), docs.end());
    const double giant_load =
        static_cast<double>(snapshot.components().front().load) /
        static_cast<double>(snapshot.num_docs());
    std::printf(
        "joint_prob=%.3f: giant component holds %.1f%% of the load, k=%d\n",
        joint_prob, 100.0 * giant_load, k);
    std::printf("  %-18s %-10s %-10s %-10s\n", "algorithm", "avg comm",
                "max load", "gini");

    struct Entry {
      std::string name;
      std::unique_ptr<PartitioningAlgorithm> algorithm;
    };
    std::vector<Entry> entries;
    entries.push_back({"DS (plain)", std::make_unique<DsAlgorithm>()});
    for (const double share : {0.30, 0.15, 0.05}) {
      entries.push_back({"DS+split@" + std::to_string(share).substr(0, 4),
                         std::make_unique<DsSplitAlgorithm>(share)});
    }
    entries.push_back({"SCL", std::make_unique<SclAlgorithm>()});

    for (const Entry& entry : entries) {
      const PartitionSet ps =
          entry.algorithm->CreatePartitions(snapshot, k, /*seed=*/5);
      const PartitionQuality q = EvaluatePartitionQuality(snapshot, ps);
      std::printf("  %-18s %-10.3f %-10.3f %-10.3f\n", entry.name.c_str(),
                  q.avg_communication, q.max_load, q.load_gini);
    }
    std::printf("\n");
  }
  std::printf(
      "reading: as the giant component grows, plain DS's max load follows "
      "it; the split variant caps it at a small communication premium, far "
      "below SCL's replication.\n");
  return 0;
}
