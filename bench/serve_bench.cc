// Micro-benchmarks of the serving layer (src/serve): read QPS of the three
// query types against a CorrelationIndex, ingest throughput, and mixed
// read/write behaviour. The headline configurations run the readers
// against a *live* single-writer ingest thread, so the numbers include the
// RCU-style snapshot churn a production deployment would see.
//
// Registration order matters: the writer-side benchmarks come first, so
// the shared live harness (a background ingest thread that stays up for
// the rest of the binary) is only started once the read benchmarks begin.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/jaccard.h"
#include "gen/tweet_generator.h"
#include "serve/correlation_index.h"

namespace {

using namespace corrtrack;

constexpr Timestamp kPeriodSpan = 5 * kMillisPerMinute;

/// Pre-computed period result batches: what the Tracker would forward for
/// consecutive reporting periods of the generator workload. Generated once
/// and shared — three benchmark harnesses consume the same batches, and
/// subset-counting 120k documents is seconds of setup.
const std::vector<std::vector<JaccardEstimate>>& SharedPeriods() {
  static const auto periods = [] {
    constexpr int kNumPeriods = 6;
    constexpr int kDocsPerPeriod = 20000;
    gen::GeneratorConfig config;
    config.seed = 99;
    gen::TweetGenerator generator(config);
    std::vector<std::vector<JaccardEstimate>> out;
    out.reserve(kNumPeriods);
    for (int p = 0; p < kNumPeriods; ++p) {
      SubsetCounterTable counters;
      for (int d = 0; d < kDocsPerPeriod; ++d) {
        counters.Observe(generator.Next().tags);
      }
      // Support > 1 keeps ~2k sets per period (~10k served overall): a
      // meatier index than the paper's sn = 3 screening would leave, so
      // the read path is probed at a realistic fan-out.
      out.push_back(counters.ReportAll(1));
    }
    return out;
  }();
  return periods;
}

std::vector<TagId> HotTags(
    const std::vector<std::vector<JaccardEstimate>>& periods) {
  std::vector<char> seen;
  std::vector<TagId> tags;
  for (const auto& period : periods) {
    for (const JaccardEstimate& estimate : period) {
      for (const TagId tag : estimate.tags) {
        if (seen.size() <= tag) seen.resize(tag + 1, 0);
        if (!seen[tag]) {
          seen[tag] = 1;
          tags.push_back(tag);
        }
      }
    }
  }
  return tags;
}

std::vector<TagSet> HotSets(
    const std::vector<std::vector<JaccardEstimate>>& periods, size_t limit) {
  std::vector<TagSet> sets;
  for (const JaccardEstimate& estimate : periods.back()) {
    if (sets.size() >= limit) break;
    sets.push_back(estimate.tags);
  }
  return sets;
}

/// Shared state of the read benchmarks: an index pre-loaded with every
/// period plus a background single-writer thread that keeps re-ingesting
/// them at a production-like cadence, so reads race a live RCU swap.
struct LiveHarness {
  const std::vector<std::vector<JaccardEstimate>>& periods = SharedPeriods();
  serve::CorrelationIndex index;
  std::vector<TagId> hot_tags = HotTags(periods);
  std::vector<TagSet> hot_sets = HotSets(periods, 1024);
  std::atomic<bool> stop{false};
  Timestamp next_period = 0;
  std::thread writer;

  LiveHarness() {
    for (const auto& period : periods) {
      index.ApplyPeriod(next_period += kPeriodSpan, period);
    }
    writer = std::thread([this] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        index.ApplyPeriod(next_period += kPeriodSpan,
                          periods[i++ % periods.size()]);
        // Throttled: a reporting period's worth of results every 25 ms is
        // already ~12000x the paper's 5-minute cadence; anything hotter
        // would just benchmark the writer on a small machine.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }
  ~LiveHarness() {
    stop.store(true, std::memory_order_relaxed);
    writer.join();
  }
};

LiveHarness& Live() {
  static LiveHarness harness;
  return harness;
}

/// Ingest throughput: estimates applied per second, steady-state (the
/// index reaches its retention plateau after the first few periods).
void BM_ServeIngestPeriod(benchmark::State& state) {
  const auto& periods = SharedPeriods();
  serve::CorrelationIndex index;
  Timestamp now = 0;
  size_t i = 0;
  uint64_t estimates = 0;
  for (auto _ : state) {
    const auto& period = periods[i++ % periods.size()];
    index.ApplyPeriod(now += kPeriodSpan, period);
    estimates += period.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(estimates));
}
BENCHMARK(BM_ServeIngestPeriod)->Unit(benchmark::kMillisecond);

/// State of the mixed benchmark: no background thread — thread 0 of the
/// benchmark itself is the single writer. The magic static makes first-use
/// construction a safe rendezvous for all benchmark threads; the writer
/// cursors are only ever touched by thread 0.
struct MixedHarness {
  const std::vector<std::vector<JaccardEstimate>>& periods = SharedPeriods();
  serve::CorrelationIndex index;
  std::vector<TagId> hot_tags = HotTags(periods);
  Timestamp next_period = 0;
  size_t writes = 0;

  MixedHarness() {
    for (const auto& period : periods) {
      index.ApplyPeriod(next_period += kPeriodSpan, period);
    }
  }
};

MixedHarness& Mixed() {
  static MixedHarness harness;
  return harness;
}

/// Mixed read/write: thread 0 interleaves full-period ingests into its
/// query stream (one per 4096 queries), the other threads read back-to-
/// back. Items are queries; the ingest cost shows up as their slowdown.
void BM_ServeMixedReadWrite(benchmark::State& state) {
  MixedHarness& mixed = Mixed();
  auto reader = mixed.index.NewReader();
  std::vector<serve::ScoredSet> results;
  const size_t n = mixed.hot_tags.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  uint64_t it = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0 && (it++ % 4096) == 0) {
      mixed.index.ApplyPeriod(
          mixed.next_period += kPeriodSpan,
          mixed.periods[mixed.writes++ % mixed.periods.size()]);
    }
    benchmark::DoNotOptimize(
        reader.TopCorrelated(mixed.hot_tags[i % n], 8, &results));
    i += 13;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeMixedReadWrite)->Threads(4)->UseRealTime();

/// TopCorrelated QPS against the live harness. The 4-thread configuration
/// is the acceptance headline: aggregate items/s is the whole-process
/// query rate sustained while the single writer keeps publishing.
void BM_ServeTopCorrelated(benchmark::State& state) {
  LiveHarness& live = Live();
  auto reader = live.index.NewReader();
  std::vector<serve::ScoredSet> results;
  const size_t n = live.hot_tags.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reader.TopCorrelated(live.hot_tags[i % n], 8, &results));
    i += 13;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeTopCorrelated)->Threads(1)->Threads(4)->UseRealTime();

/// Exact Lookup QPS against the live harness.
void BM_ServeLookup(benchmark::State& state) {
  LiveHarness& live = Live();
  auto reader = live.index.NewReader();
  const size_t n = live.hot_sets.size();
  size_t i = static_cast<size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.Lookup(live.hot_sets[i % n]));
    i += 13;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeLookup)->Threads(1)->Threads(4)->UseRealTime();

/// Dashboard-style threshold scan over the whole index (items are served
/// sets, so items/s is scan bandwidth, not request rate).
void BM_ServeSnapshotScan(benchmark::State& state) {
  LiveHarness& live = Live();
  auto reader = live.index.NewReader();
  std::vector<serve::ScoredSet> results;
  uint64_t served = 0;
  for (auto _ : state) {
    served += reader.Snapshot(0.25, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(served));
}
BENCHMARK(BM_ServeSnapshotScan)->Unit(benchmark::kMicrosecond);

}  // namespace

CORRTRACK_BENCHMARK_MAIN();
